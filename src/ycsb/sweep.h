#ifndef ELEPHANT_YCSB_SWEEP_H_
#define ELEPHANT_YCSB_SWEEP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/task_pool.h"
#include "sim/fault.h"
#include "ycsb/driver.h"
#include "ycsb/systems.h"
#include "ycsb/workload.h"

namespace elephant::ycsb {

/// Saturation-sweep serving harness: drives one OLTP substrate from
/// idle to saturation with an open-loop Poisson arrival process and
/// maps the latency-vs-load curve the closed-loop YCSB driver cannot
/// see. A closed-loop client self-throttles — each thread waits for
/// its previous response, so offered load collapses exactly when the
/// system degrades. The sweep keeps arriving at the configured rate
/// regardless of completions, which is what exposes the knee: the
/// first offered rate where the tail detaches from the idle floor, or
/// where admission control must shed work.
///
/// Determinism contract: every step runs on a fresh testbed with
/// per-stream counter-derived RNG seeds, so the whole curve is a pure
/// function of (kind, options) and bit-identical at any host thread
/// count; steps are farmed out to the TaskPool into per-step slots.
struct SweepOptions {
  /// Dataset sizing, seed, warmup and measure windows. The sweep
  /// reuses the driver's sizing logic (MakeSystem) so each step's
  /// testbed matches the closed-loop benchmarks exactly.
  DriverOptions driver;
  WorkloadSpec workload = WorkloadSpec::B();
  /// Offered rates (ops/sec across the cluster), ascending. One fresh
  /// testbed per step, as the paper reloads between runs.
  std::vector<int64_t> offered_rates = {2000, 5000, 10000,
                                        20000, 40000, 80000};
  /// Independent Poisson arrival streams (the open-loop analogue of
  /// client threads); each owns a counter-derived RNG stream.
  int arrival_streams = 64;
  /// Front-door admission control applied at each engine (see
  /// AdmissionGate: mongod crashes at ~620 in-flight ops per process,
  /// so open-loop overload must be bounded somewhere).
  AdmissionGate::Limits gate;
  /// Knee rule: first step whose p99 exceeds this multiple of the
  /// idle-floor p99 (step 0), or any step that sheds or crashes.
  double knee_factor = 4.0;
  /// Host threads the step fan-out may use (0 = every pool worker).
  /// Results are identical either way — the determinism tests pin this
  /// to 1 and 8 and compare fingerprints.
  int parallelism = 0;

  /// CI preset: small dataset, short windows, four rates spanning
  /// idle to well past saturation.
  static SweepOptions Small();
};

/// One step of the sweep: everything measured inside the step's
/// [warmup, warmup+measure) virtual-time window.
struct SweepStepResult {
  double offered_rate = 0;   ///< ops/sec the arrival process targeted
  double achieved_rate = 0;  ///< completed ops/sec inside the window
  int64_t arrivals = 0;      ///< arrivals inside the window
  int64_t completed = 0;     ///< ok completions of measured arrivals
  int64_t shed = 0;          ///< measured arrivals rejected at the gate
  int64_t failed = 0;        ///< measured arrivals that failed
  bool crashed = false;
  uint64_t sim_events = 0;   ///< DES events over the whole step

  /// Virtual-time latency tail (arrival to response), microseconds.
  int64_t p50_us = 0;
  int64_t p95_us = 0;
  int64_t p99_us = 0;
  int64_t p999_us = 0;

  /// Mean utilization over the measure window, aggregated across the
  /// server nodes. Busy time is accounted at admission, so values may
  /// exceed 1.0 under overload (work admitted faster than real-time
  /// capacity); reported unclamped on purpose. `lock_wait` is the mean
  /// number of operations blocked on row/global locks (wait time per
  /// wall second, also unbounded above).
  struct Utilization {
    double cpu = 0;
    double disk = 0;       ///< data volumes
    double log_disk = 0;   ///< dedicated log spindles
    double nic_tx = 0;
    double nic_rx = 0;
    double lock_wait = 0;
  };
  Utilization util;

  /// Admission-gate occupancy over the whole step.
  int64_t peak_inflight = 0;
  int64_t peak_queued = 0;
  double queue_wait_ms = 0;  ///< total gate queue wait in the window

  uint64_t Fingerprint() const;
};

/// The full curve for one system, with the detected knee.
struct SweepCurve {
  std::string system;
  std::vector<SweepStepResult> steps;
  double idle_p99_ms = 0;        ///< step 0's p99 (the idle floor)
  int knee_step = -1;            ///< index of the knee; -1 = none found
  double knee_offered_rate = 0;  ///< offered rate at the knee
  double p99_at_knee_ms = 0;

  uint64_t Fingerprint() const;
};

/// Runs one offered-rate step on a fresh testbed. `plan` (optional)
/// arms fault injection over the step, chaos-harness style: faults
/// fire in virtual time and the post-run drain asserts quiescence and
/// invariants either way.
SweepStepResult RunSweepStep(SystemKind kind, int64_t offered_rate,
                             const SweepOptions& options,
                             const sim::FaultPlan* plan = nullptr);

/// Knee rule (see SweepOptions::knee_factor): first step that crashed
/// or shed, or — past step 0 — whose p99 exceeds knee_factor times the
/// step-0 p99. Returns -1 if the curve never leaves the floor.
int DetectKnee(const std::vector<SweepStepResult>& steps,
               double knee_factor);

/// Sweeps all configured offered rates for one system, steps in
/// parallel on the global TaskPool (bit-identical at any thread
/// count), and locates the knee.
SweepCurve RunSaturationSweep(SystemKind kind, const SweepOptions& options);

/// Runs the same sweep twice and verifies bit-identical fingerprints
/// (the determinism contract). Returns Internal on divergence.
Status VerifySweepDeterminism(SystemKind kind, const SweepOptions& options);

/// Seed override for replaying a sweep: ELEPHANT_SWEEP_SEED (decimal
/// or 0x-hex), or `fallback` when unset/empty.
uint64_t SweepSeedFromEnv(uint64_t fallback);

}  // namespace elephant::ycsb

#endif  // ELEPHANT_YCSB_SWEEP_H_
