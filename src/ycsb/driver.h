#ifndef ELEPHANT_YCSB_DRIVER_H_
#define ELEPHANT_YCSB_DRIVER_H_

#include <map>
#include <memory>
#include <vector>

#include "common/distributions.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "ycsb/systems.h"
#include "ycsb/workload.h"

namespace elephant::ycsb {

/// Client-side fault tolerance: bounded retry with exponential backoff
/// plus a per-operation timeout. Disabled by default (max_retries = 0),
/// in which case the driver's hot path is byte-for-byte the historical
/// one — no extra events, no extra random draws — and every modeled
/// fingerprint is unchanged.
struct RetryPolicy {
  /// Retries after the first attempt; 0 disables the whole machinery.
  int max_retries = 0;
  SimTime initial_backoff = 1 * kMillisecond;
  double multiplier = 2.0;
  SimTime max_backoff = 64 * kMillisecond;
  /// Uniform +/- fraction applied to each backoff (decorrelates client
  /// herds). Drawn from the client thread's own seeded stream, so the
  /// whole schedule is deterministic per (seed, thread).
  double jitter = 0.25;
  /// An attempt whose completion took longer than this is treated as a
  /// retryable failure (at-least-once semantics: the server may still
  /// have applied it; durability accounting is server-side).
  SimTime op_timeout = 2 * kSecond;

  bool enabled() const { return max_retries > 0; }
  /// Backoff before retry `attempt` (1-based): exponential with cap and
  /// jitter. Pure function of (policy, attempt, rng state).
  SimTime BackoffFor(int attempt, Rng* rng) const;
};

/// Benchmark run configuration. Defaults are the paper's protocol
/// scaled down time- and size-wise while preserving its governing
/// ratios: 8 client nodes x 100 threads, dataset 2.5x the server
/// memory, run measured over trailing windows.
struct DriverOptions {
  int64_t record_count = 1600000;  ///< total records (200 K per node)
  int32_t record_bytes = 1024;     ///< 1 KB records (§3.4.1)
  int32_t field_bytes = 100;       ///< 10 fields of 100 B
  int threads_per_client_node = 100;
  SimTime warmup = 4 * kSecond;
  SimTime measure = 8 * kSecond;
  SimTime window = 1 * kSecond;   ///< paper: 10 s windows over 30 min
  int64_t target_throughput = 10000;  ///< ops/sec across the cluster
  /// Zipfian skew of the request distribution (YCSB constant).
  double request_theta = 0.99;
  /// Dataset:memory ratio. The paper's testbed is 2.5:1 over 640 M
  /// records; zipfian popularity at the model's scaled-down record
  /// counts is flatter than at 640 M, so the default ratio is
  /// calibrated (1.9) to reproduce the paper's cache-hit rates (and
  /// hence the peak throughputs). Set 2.5 for the raw hardware ratio.
  double data_to_memory_ratio = 1.9;
  /// Fraction of a node's memory available as mmap page cache for the
  /// MongoDB systems (double caching, per-connection buffers, 16
  /// process heaps). Mongo-CS is lower: 800 clients hold direct
  /// connections to all 128 mongods instead of pooling through mongos.
  double mongo_cache_fraction_as = 0.85;
  double mongo_cache_fraction_cs = 0.7;
  uint64_t seed = 0xE1EFA47;
  /// Client retry/timeout policy (chaos runs enable it; benchmarks
  /// leave it disabled).
  RetryPolicy retry;
  /// Overrides the mongod mmap flush cadence when > 0 (chaos runs
  /// shrink it so the loss-window bound is exercised inside a short
  /// run); 0 keeps the model default.
  SimTime mongo_flush_interval = 0;
};

/// Result of one benchmark run at one target throughput.
struct RunResult {
  double target = 0;
  double achieved_ops_per_sec = 0;
  bool crashed = false;
  int64_t ops_measured = 0;
  /// Events processed by the DES core over the whole run (load + warmup
  /// + measurement); part of the determinism fingerprint.
  uint64_t sim_events = 0;
  /// Fault-tolerance counters (all zero on a fault-free run; they enter
  /// the fingerprint only when nonzero, preserving historical values).
  int64_t transient_errors = 0;  ///< ops that exhausted their retries
  int64_t retries = 0;           ///< re-attempts issued
  int64_t timeouts = 0;          ///< attempts past RetryPolicy::op_timeout

  struct OpStats {
    int64_t count = 0;
    double mean_latency_ms = 0;
    double latency_stderr_ms = 0;  ///< across measurement windows
    double p99_latency_ms = 0;
  };
  std::map<OpType, OpStats> per_op;

  double MeanLatencyMs(OpType type) const {
    auto it = per_op.find(type);
    return it == per_op.end() ? 0.0 : it->second.mean_latency_ms;
  }

  /// Bit-exact fingerprint of the run: event count plus every stat,
  /// doubles mixed by bit pattern. Two same-seed runs of the same
  /// configuration must produce identical fingerprints (the simulation
  /// determinism contract; see tests/determinism_test.cc).
  uint64_t Fingerprint() const;
};

/// Deterministic YCSB request generator: the key-distribution chooser
/// plus the append-key counter, shared by the closed-loop driver and
/// the open-loop saturation sweep. All randomness flows through the
/// caller-supplied Rng, so the sequence of operations is a pure
/// function of (workload, options, rng draws) — the draw order is
/// byte-identical to the historical YcsbDriver::NextOp.
class OpGenerator {
 public:
  OpGenerator(const WorkloadSpec& workload, const DriverOptions& options);

  /// The next operation; consumes 1-3 draws from `rng`.
  Op Next(Rng* rng);

  /// Note a successful append so kLatest/scan choosers may pick it.
  void NoteInsert(uint64_t key) { key_chooser_->SetLastValue(key); }

  /// Statistical warm start: samples the request distribution (from a
  /// seed-derived private stream) and touches the sampled keys'
  /// cache pages, reconstructing the steady-state resident set the
  /// paper reaches minutes into each 30-minute run.
  void WarmCaches(DataServingSystem* system);

 private:
  WorkloadSpec workload_;
  DriverOptions options_;
  std::unique_ptr<IntegerGenerator> key_chooser_;
  uint64_t next_insert_key_ = 0;
};

/// Drives one system through one workload at one target throughput,
/// reproducing the YCSB measurement protocol: closed-loop client
/// threads with fixed-rate pacing (a thread that falls behind issues
/// immediately), latency recorded per operation type, throughput and
/// latency averaged over trailing windows with standard errors.
class YcsbDriver {
 public:
  YcsbDriver(OltpTestbed* testbed, DataServingSystem* system,
             const WorkloadSpec& workload, const DriverOptions& options);

  /// Bulk-loads the dataset (instant) and starts background work.
  Status Prepare();

  /// Runs the benchmark and returns the measurements.
  RunResult Run();

  /// Simulates a timed load phase instead of the instant bulk load:
  /// `loader_threads` clients insert every record through the normal
  /// write path. Returns the virtual duration. Used by the load-time
  /// bench (§3.4.2); scale the result by (paper records / model
  /// records) for minutes-at-640M.
  SimTime SimulateTimedLoad(int loader_threads = 128);

 private:
  struct WindowStats {
    int64_t ops = 0;
    std::map<OpType, std::pair<double, int64_t>> latency;  // sum_ms, count
  };

  sim::Task ClientThread(int thread_id, SimTime start, SimTime end);
  sim::Task LoaderThread(int thread_id, int loader_threads,
                         sim::Latch* done);

  OltpTestbed* testbed_;
  DataServingSystem* system_;
  WorkloadSpec workload_;
  DriverOptions options_;

  OpGenerator opgen_;
  SimTime measure_start_ = 0;
  std::vector<WindowStats> windows_;
  std::map<OpType, Histogram> latency_;
  int64_t ops_completed_ = 0;
  int64_t ops_failed_ = 0;
  int64_t transient_errors_ = 0;
  int64_t retries_ = 0;
  int64_t timeouts_ = 0;
};

/// Sweeps a workload across target throughputs (one fresh testbed per
/// point, as the paper reloads between runs) and returns the
/// latency-vs-throughput curve for one system kind.
enum class SystemKind { kSqlCs, kMongoCs, kMongoAs };

const char* SystemKindName(SystemKind kind);

/// A freshly wired testbed plus the system under test built on it.
/// The testbed owns the simulation; destroy the system first (it holds
/// pointers into the testbed), i.e. keep this struct together.
struct SystemUnderTest {
  std::unique_ptr<OltpTestbed> testbed;
  std::unique_ptr<DataServingSystem> system;
};

/// Builds one of the paper's three OLTP systems on a fresh testbed,
/// sized to `options` (dataset bytes / data_to_memory_ratio per node,
/// the calibrated Mongo cache fractions, scaled checkpoint and chunk
/// cadences). Shared by RunOnePoint, the chaos harness, and the
/// saturation sweep.
SystemUnderTest MakeSystem(SystemKind kind, const DriverOptions& options,
                           bool read_uncommitted = false);

struct SweepPoint {
  double target;
  RunResult result;
};

/// Runs one (system, workload, target) point on a fresh testbed.
RunResult RunOnePoint(SystemKind kind, const WorkloadSpec& workload,
                      int64_t target_throughput,
                      const DriverOptions& base_options = {},
                      bool read_uncommitted = false);

/// Simulation determinism checker: runs the same (system, workload,
/// target, seed) point twice on fresh testbeds and verifies the two
/// runs produced bit-identical fingerprints (event counts and every
/// stat). Returns Internal with both fingerprints on divergence.
Status VerifyDeterminism(SystemKind kind, const WorkloadSpec& workload,
                         int64_t target_throughput,
                         const DriverOptions& base_options = {});

/// Result of one chaos run: the benchmark measurements plus everything
/// the harness asserts on — what the plan scheduled, what the injector
/// actually applied, and the acknowledged-write ledger.
struct ChaosOutcome {
  RunResult result;
  DataServingSystem::DurabilityLedger ledger;
  uint64_t plan_fingerprint = 0;
  uint64_t injection_fingerprint = 0;
  int64_t faults_injected = 0;
  int64_t crashes_applied = 0;
  int64_t restarts_applied = 0;
  std::string plan_description;

  /// Digest of the whole outcome. The seed-replay contract: two runs of
  /// one (kind, workload, target, options, plan) must match bit-exactly
  /// at any host thread count.
  uint64_t Fingerprint() const;
};

/// Runs one (system, workload, target) point on a fresh testbed with
/// `plan` armed over it: faults fire in virtual time, crashed nodes
/// recover through their engines' recovery paths, clients ride through
/// via the retry policy (enabled with 4 retries if the caller left it
/// off). After the measured window the system is stopped, the event
/// loop drained to idle (pending restarts included), quiescence and
/// per-engine invariants asserted, and the durability ledger collected.
ChaosOutcome RunChaosPoint(SystemKind kind, const WorkloadSpec& workload,
                           int64_t target_throughput,
                           const DriverOptions& base_options,
                           const sim::FaultPlan& plan);

std::vector<SweepPoint> RunSweep(SystemKind kind,
                                 const WorkloadSpec& workload,
                                 const std::vector<int64_t>& targets,
                                 const DriverOptions& base_options = {});

}  // namespace elephant::ycsb

#endif  // ELEPHANT_YCSB_DRIVER_H_
