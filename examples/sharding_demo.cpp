// Anatomy of MongoDB auto-sharding versus client-side hashing — the
// §2.4 mechanics of the paper made visible: chunk splits as a
// collection grows, the balancer redistributing chunks, and why range
// partitioning answers short scans from one shard while hash
// partitioning must ask every shard.

#include <cstdio>

#include "common/rng.h"
#include "docstore/sharding.h"

using namespace elephant;
using namespace elephant::docstore;

int main() {
  // A small auto-sharded cluster: 8 shards, 64 KB chunks, 1 KB docs.
  ConfigServer::Options opt;
  opt.max_chunk_bytes = 64 * 1024;
  opt.migration_threshold = 2;
  ConfigServer config(8, opt);

  printf("Inserting 4,000 documents into one initial chunk...\n");
  for (uint64_t key = 0; key < 4000; ++key) {
    config.NoteInsert(key, 1024);
  }
  printf("  chunks after splits: %zu (splits: %lld)\n", config.num_chunks(),
         static_cast<long long>(config.splits()));
  auto counts = config.ChunksPerShard();
  printf("  chunks per shard before balancing:");
  for (int c : counts) printf(" %d", c);
  printf("\n");

  printf("\nRunning the balancer until the cluster is balanced...\n");
  int rounds = 0;
  while (!config.BalanceOnce().empty()) rounds++;
  counts = config.ChunksPerShard();
  printf("  %d migrations; chunks per shard now:", rounds);
  for (int c : counts) printf(" %d", c);
  printf("\n");

  // Short scans: range partitioning vs hashing.
  printf("\nShort scans of 100 keys (the paper's workload E insight):\n");
  Rng rng(7);
  double range_shards = 0, hash_shards = 0;
  const int kTrials = 1000;
  for (int i = 0; i < kTrials; ++i) {
    uint64_t start = rng.Uniform(3900);
    range_shards += config.RouteRange(start, start + 100).size();
    // Hash partitioning: keys of the range scatter over all shards.
    std::vector<bool> hit(8, false);
    for (uint64_t k = start; k < start + 100; ++k) {
      hit[Fnv1a64(k) % 8] = true;
    }
    int n = 0;
    for (bool h : hit) n += h;
    hash_shards += n;
  }
  printf("  range partitioning touches %.2f shards per scan on average\n",
         range_shards / kTrials);
  printf("  hash partitioning touches  %.2f shards per scan on average\n",
         hash_shards / kTrials);

  // Appends: the flip side of range partitioning.
  printf("\nAppends of 100 new max keys:\n");
  std::vector<int> append_hits(8, 0);
  for (uint64_t k = 4000; k < 4100; ++k) {
    append_hits[config.Route(k)]++;
  }
  printf("  range partitioning sends them to shards:");
  for (int c : append_hits) printf(" %d", c);
  printf("  <- one hot shard\n");
  std::vector<int> hash_hits(8, 0);
  for (uint64_t k = 4000; k < 4100; ++k) {
    hash_hits[Fnv1a64(k) % 8]++;
  }
  printf("  hash partitioning sends them to shards: ");
  for (int c : hash_hits) printf(" %d", c);
  printf("  <- spread out\n");
  return 0;
}
