// An interactive SQL shell over a freshly generated TPC-H database —
// the library as a miniature analytics engine.
//
//   $ ./sql_shell [scale_factor]
//   tpch> SELECT l_returnflag, COUNT(*) AS n FROM lineitem
//         GROUP BY l_returnflag ORDER BY l_returnflag
//
// Supports the dialect of sql::Parse (SELECT [*]/JOIN/WHERE/GROUP BY/
// HAVING/ORDER BY/LIMIT, aggregates, LIKE, BETWEEN, DATE literals).
// One statement per line; empty line or EOF exits.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "sql/engine.h"
#include "tpch/dbgen.h"

using namespace elephant;

int main(int argc, char** argv) {
  double sf = argc > 1 ? atof(argv[1]) : 0.01;
  printf("Generating TPC-H at SF %.3f...\n", sf);
  tpch::TpchDatabase db = tpch::GenerateDatabase(sf);
  sql::Database catalog;
  catalog.RegisterTpch(db);
  printf("Tables: region nation supplier part partsupp customer orders "
         "lineitem (%zu lineitems)\n",
         db.lineitem.num_rows());
  printf("Example: SELECT o_orderpriority, COUNT(*) AS n FROM orders "
         "GROUP BY o_orderpriority ORDER BY o_orderpriority\n\n");

  std::string line;
  char buf[4096];
  for (;;) {
    printf("tpch> ");
    fflush(stdout);
    if (fgets(buf, sizeof(buf), stdin) == nullptr) break;
    line = buf;
    while (!line.empty() && (line.back() == '\n' || line.back() == ';')) {
      line.pop_back();
    }
    if (line.empty()) break;
    auto result = catalog.Query(line);
    if (!result.ok()) {
      printf("error: %s\n", result.status().ToString().c_str());
      continue;
    }
    printf("%s(%zu rows)\n", result.value().ToString(25).c_str(),
           result.value().num_rows());
  }
  return 0;
}
