// Defining a custom data-serving workload with the public API and
// sweeping it across target throughputs on any of the three systems —
// the extension point a downstream user of the library reaches for
// first ("what if my workload is 80/15/5 read/update/append?").
//
//   $ ./ycsb_sweep [sql|mongo-as|mongo-cs]

#include <cstdio>
#include <cstring>

#include "ycsb/driver.h"

using namespace elephant;
using namespace elephant::ycsb;

int main(int argc, char** argv) {
  SystemKind kind = SystemKind::kSqlCs;
  if (argc > 1) {
    if (strcmp(argv[1], "mongo-as") == 0) kind = SystemKind::kMongoAs;
    if (strcmp(argv[1], "mongo-cs") == 0) kind = SystemKind::kMongoCs;
  }

  // A workload that is not in the paper: a social-feed-like mix.
  WorkloadSpec feed;
  feed.name = "feed";
  feed.description = "80% reads / 15% updates / 5% appends, read-latest";
  feed.read = 0.80;
  feed.update = 0.15;
  feed.insert = 0.05;
  feed.distribution = Distribution::kLatest;

  DriverOptions opt;
  opt.record_count = 800000;
  opt.warmup = 2 * kSecond;
  opt.measure = 4 * kSecond;

  printf("Custom workload '%s' (%s) on %s\n", feed.name.c_str(),
         feed.description.c_str(), SystemKindName(kind));
  printf("%10s %12s %14s %14s %14s\n", "target", "achieved", "read (ms)",
         "update (ms)", "append (ms)");
  for (int64_t target : {5000, 10000, 20000, 40000, 80000, 160000}) {
    RunResult r = RunOnePoint(kind, feed, target, opt);
    if (r.crashed && r.achieved_ops_per_sec < target / 10.0) {
      printf("%10lld %12s   (crashed)\n", static_cast<long long>(target),
             "--");
      continue;
    }
    printf("%10lld %12.0f %14.2f %14.2f %14.2f\n",
           static_cast<long long>(target), r.achieved_ops_per_sec,
           r.MeanLatencyMs(OpType::kRead), r.MeanLatencyMs(OpType::kUpdate),
           r.MeanLatencyMs(OpType::kInsert));
  }
  return 0;
}
