// Quickstart: the two headline comparisons of the paper in ~60 lines.
//
//   $ ./quickstart
//
// 1. DSS: TPC-H Q5 on Hive vs PDW at SF 250 (simulated 16-node cluster).
// 2. OLTP: YCSB workload C on client-sharded SQL Server vs auto-sharded
//    MongoDB (simulated 8 servers + 8 client machines).

#include <cstdio>

#include "tpch/dss_benchmark.h"
#include "tpch/queries.h"
#include "ycsb/driver.h"

using namespace elephant;

int main() {
  // --- DSS: Hive vs PDW ------------------------------------------------
  tpch::DssBenchmark dss;
  const int query = 5;
  const double sf = 250;
  hive::HiveQueryResult hive = dss.RunHive(query, sf);
  pdw::PdwQueryResult pdw = dss.RunPdw(query, sf);
  printf("TPC-H Q%d (%s) at SF %.0f:\n", query, tpch::QueryName(query), sf);
  printf("  Hive : %7.1f s in %zu MapReduce jobs\n",
         SimTimeToSeconds(hive.total), hive.jobs.size());
  printf("  PDW  : %7.1f s in %zu parallel steps  (%.1fx faster)\n",
         SimTimeToSeconds(pdw.total), pdw.steps.size(),
         static_cast<double>(hive.total) / pdw.total);

  // --- OLTP: SQL-CS vs Mongo-AS ---------------------------------------
  ycsb::DriverOptions opt;
  opt.record_count = 400000;  // keep the demo quick
  opt.warmup = 2 * kSecond;
  opt.measure = 4 * kSecond;
  const int64_t target = 40000;
  ycsb::RunResult sql = ycsb::RunOnePoint(ycsb::SystemKind::kSqlCs,
                                          ycsb::WorkloadSpec::C(), target,
                                          opt);
  ycsb::RunResult mongo = ycsb::RunOnePoint(ycsb::SystemKind::kMongoAs,
                                            ycsb::WorkloadSpec::C(), target,
                                            opt);
  printf("\nYCSB workload C at a %lld ops/s target:\n",
         static_cast<long long>(target));
  printf("  SQL-CS   : %7.0f ops/s, read latency %5.2f ms\n",
         sql.achieved_ops_per_sec,
         sql.MeanLatencyMs(ycsb::OpType::kRead));
  printf("  Mongo-AS : %7.0f ops/s, read latency %5.2f ms\n",
         mongo.achieved_ops_per_sec,
         mongo.MeanLatencyMs(ycsb::OpType::kRead));
  printf("\nThe elephants hold: the relational systems win both ends of "
         "the big-data spectrum, as the paper found in 2012.\n");
  return 0;
}
