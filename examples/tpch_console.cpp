// A miniature TPC-H console: generates a real (scaled-down) TPC-H
// database with the built-in dbgen, executes real queries through the
// relational executor, prints their answers, and then shows what the
// simulated Hive and PDW clusters would take for the same query at the
// paper's scale factors.
//
//   $ ./tpch_console [query_number] [scale_factor]
//   $ ./tpch_console 5 0.01

#include <cstdio>
#include <cstdlib>

#include "tpch/dbgen.h"
#include "tpch/dss_benchmark.h"
#include "tpch/queries.h"

using namespace elephant;

int main(int argc, char** argv) {
  int query = argc > 1 ? atoi(argv[1]) : 5;
  double sf = argc > 2 ? atof(argv[2]) : 0.01;
  if (query < 1 || query > tpch::kNumQueries) {
    fprintf(stderr, "query must be 1..22\n");
    return 1;
  }

  printf("Generating TPC-H at SF %.3f...\n", sf);
  tpch::TpchDatabase db = tpch::GenerateDatabase(sf);
  printf("  %zu orders, %zu lineitems, %zu customers\n",
         db.orders.num_rows(), db.lineitem.num_rows(),
         db.customer.num_rows());

  printf("\nQ%d: %s\n", query, tpch::QueryName(query));
  exec::Table result = tpch::RunQuery(query, db);
  printf("%s\n", result.ToString(10).c_str());

  printf("Same query on the simulated 16-node cluster:\n");
  printf("%-8s | %-12s | %-12s | %-9s\n", "SF (GB)", "Hive (s)", "PDW (s)",
         "speedup");
  tpch::DssBenchmark bench;
  for (double scale : tpch::kPaperScaleFactors) {
    hive::HiveQueryResult h = bench.RunHive(query, scale);
    pdw::PdwQueryResult p = bench.RunPdw(query, scale);
    if (h.failed_out_of_disk) {
      printf("%-8.0f | %-12s | %12.0f | %-9s\n", scale, "out of disk",
             SimTimeToSeconds(p.total), "--");
    } else {
      printf("%-8.0f | %12.0f | %12.0f | %8.1fx\n", scale,
             SimTimeToSeconds(h.total), SimTimeToSeconds(p.total),
             static_cast<double>(h.total) / p.total);
    }
  }

  // Show the stage-level anatomy at SF 1000.
  printf("\nHive job breakdown at SF 1000:\n");
  hive::HiveQueryResult h = bench.RunHive(query, 1000);
  for (const auto& job : h.jobs) {
    printf("  %-32s %8.1f s (map %.0f s, %d waves)\n", job.name.c_str(),
           SimTimeToSeconds(job.stats.total),
           SimTimeToSeconds(job.stats.map_phase), job.stats.map_waves);
  }
  printf("PDW step breakdown at SF 1000:\n");
  pdw::PdwQueryResult p = bench.RunPdw(query, 1000);
  for (const auto& [label, t] : p.steps) {
    printf("  %-36s %8.1f s\n", label.c_str(), SimTimeToSeconds(t));
  }
  return 0;
}
