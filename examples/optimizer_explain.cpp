// EXPLAIN for the parallel optimizer: builds the join graph of a
// TPC-H-shaped query from *measured* statistics of a freshly generated
// database, runs the cost-based optimizer, and prints the movement plan
// next to the script-order plan — the §3.3.4.1 comparison, derived
// rather than asserted.
//
//   $ ./optimizer_explain

#include <cstdio>

#include "exec/statistics.h"
#include "pdw/optimizer.h"
#include "tpch/dbgen.h"

using namespace elephant;

namespace {

void PrintPlan(const char* title, const pdw::JoinPlan& plan,
               const std::vector<pdw::OptRelation>& rels) {
  printf("%s (network: %.2f GB-equivalent):\n", title,
         plan.network_bytes / 1e9);
  for (const auto& step : plan.steps) {
    printf("  join %-10s via %-18s moves %10.3f GB -> %.2e rows\n",
           rels[step.right_rel].name.c_str(),
           pdw::MovementName(step.movement), step.network_bytes / 1e9,
           step.output_rows);
  }
}

}  // namespace

int main() {
  // Measure real relation statistics at mini scale, then express them at
  // SF 1000 (TPC-H scales linearly).
  const double kMiniSf = 0.01;
  const double kTargetSf = 1000;
  const double scale = kTargetSf / kMiniSf;
  tpch::TpchDatabase db = tpch::GenerateDatabase(kMiniSf);

  auto rows = [&](const exec::Table& t) {
    return static_cast<double>(t.num_rows()) * scale;
  };
  auto bytes = [&](const exec::Table& t, double width) {
    return rows(t) * width;
  };

  // Q5's join graph: customer - orders - lineitem - supplier (+
  // replicated nation/region folded into supplier's width).
  std::vector<pdw::OptRelation> rels = {
      {"customer", rows(db.customer), bytes(db.customer, 30),
       "c_custkey"},
      {"orders", rows(db.orders), bytes(db.orders, 21), "o_orderkey"},
      {"lineitem", rows(db.lineitem), bytes(db.lineitem, 40),
       "l_orderkey"},
      {"supplier", rows(db.supplier), bytes(db.supplier, 30),
       "s_suppkey"},
  };
  std::vector<pdw::OptJoin> joins = {
      {0, 1, "c_custkey", "o_custkey",
       exec::JoinMatchFraction(db.orders, db.customer, "o_custkey",
                               "c_custkey") /
           rows(db.customer)},
      {1, 2, "o_orderkey", "l_orderkey", 1.0 / rows(db.orders)},
      {2, 3, "l_suppkey", "s_suppkey", 1.0 / rows(db.supplier)},
  };

  printf("TPC-H Q5-shaped join graph at SF %.0f, statistics measured on "
         "dbgen data at SF %.2f:\n\n",
         kTargetSf, kMiniSf);
  auto smart = pdw::Optimize(rels, joins);
  if (!smart.ok()) {
    fprintf(stderr, "optimize failed: %s\n",
            smart.status().ToString().c_str());
    return 1;
  }
  PrintPlan("Cost-based plan (PDW)", smart.value(), rels);

  pdw::OptimizerOptions naive;
  naive.cost_based = false;
  auto script = pdw::Optimize(rels, joins, naive);
  printf("\n");
  PrintPlan("Script-order plan (Hive-style common joins)",
            script.value(), rels);

  printf("\nThe cost-based plan moves %.1fx less data — the paper's "
         "\"cost-based methods that minimize network transfers\".\n",
         script.value().network_bytes / smart.value().network_bytes);
  return 0;
}
