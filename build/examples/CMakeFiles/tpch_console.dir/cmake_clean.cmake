file(REMOVE_RECURSE
  "CMakeFiles/tpch_console.dir/tpch_console.cpp.o"
  "CMakeFiles/tpch_console.dir/tpch_console.cpp.o.d"
  "tpch_console"
  "tpch_console.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpch_console.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
