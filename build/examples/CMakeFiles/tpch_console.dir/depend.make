# Empty dependencies file for tpch_console.
# This may be replaced when dependencies are built.
