# Empty compiler generated dependencies file for sharding_demo.
# This may be replaced when dependencies are built.
