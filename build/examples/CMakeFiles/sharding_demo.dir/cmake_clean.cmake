file(REMOVE_RECURSE
  "CMakeFiles/sharding_demo.dir/sharding_demo.cpp.o"
  "CMakeFiles/sharding_demo.dir/sharding_demo.cpp.o.d"
  "sharding_demo"
  "sharding_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sharding_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
