
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/cluster.cc" "src/CMakeFiles/elephant.dir/cluster/cluster.cc.o" "gcc" "src/CMakeFiles/elephant.dir/cluster/cluster.cc.o.d"
  "/root/repo/src/common/date.cc" "src/CMakeFiles/elephant.dir/common/date.cc.o" "gcc" "src/CMakeFiles/elephant.dir/common/date.cc.o.d"
  "/root/repo/src/common/distributions.cc" "src/CMakeFiles/elephant.dir/common/distributions.cc.o" "gcc" "src/CMakeFiles/elephant.dir/common/distributions.cc.o.d"
  "/root/repo/src/common/histogram.cc" "src/CMakeFiles/elephant.dir/common/histogram.cc.o" "gcc" "src/CMakeFiles/elephant.dir/common/histogram.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/elephant.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/elephant.dir/common/rng.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/CMakeFiles/elephant.dir/common/stats.cc.o" "gcc" "src/CMakeFiles/elephant.dir/common/stats.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/elephant.dir/common/status.cc.o" "gcc" "src/CMakeFiles/elephant.dir/common/status.cc.o.d"
  "/root/repo/src/common/string_util.cc" "src/CMakeFiles/elephant.dir/common/string_util.cc.o" "gcc" "src/CMakeFiles/elephant.dir/common/string_util.cc.o.d"
  "/root/repo/src/dfs/dfs.cc" "src/CMakeFiles/elephant.dir/dfs/dfs.cc.o" "gcc" "src/CMakeFiles/elephant.dir/dfs/dfs.cc.o.d"
  "/root/repo/src/docstore/document.cc" "src/CMakeFiles/elephant.dir/docstore/document.cc.o" "gcc" "src/CMakeFiles/elephant.dir/docstore/document.cc.o.d"
  "/root/repo/src/docstore/mongod.cc" "src/CMakeFiles/elephant.dir/docstore/mongod.cc.o" "gcc" "src/CMakeFiles/elephant.dir/docstore/mongod.cc.o.d"
  "/root/repo/src/docstore/sharding.cc" "src/CMakeFiles/elephant.dir/docstore/sharding.cc.o" "gcc" "src/CMakeFiles/elephant.dir/docstore/sharding.cc.o.d"
  "/root/repo/src/exec/operators.cc" "src/CMakeFiles/elephant.dir/exec/operators.cc.o" "gcc" "src/CMakeFiles/elephant.dir/exec/operators.cc.o.d"
  "/root/repo/src/exec/statistics.cc" "src/CMakeFiles/elephant.dir/exec/statistics.cc.o" "gcc" "src/CMakeFiles/elephant.dir/exec/statistics.cc.o.d"
  "/root/repo/src/exec/table.cc" "src/CMakeFiles/elephant.dir/exec/table.cc.o" "gcc" "src/CMakeFiles/elephant.dir/exec/table.cc.o.d"
  "/root/repo/src/hive/catalog.cc" "src/CMakeFiles/elephant.dir/hive/catalog.cc.o" "gcc" "src/CMakeFiles/elephant.dir/hive/catalog.cc.o.d"
  "/root/repo/src/hive/engine.cc" "src/CMakeFiles/elephant.dir/hive/engine.cc.o" "gcc" "src/CMakeFiles/elephant.dir/hive/engine.cc.o.d"
  "/root/repo/src/hive/plans.cc" "src/CMakeFiles/elephant.dir/hive/plans.cc.o" "gcc" "src/CMakeFiles/elephant.dir/hive/plans.cc.o.d"
  "/root/repo/src/hive/rcfile_format.cc" "src/CMakeFiles/elephant.dir/hive/rcfile_format.cc.o" "gcc" "src/CMakeFiles/elephant.dir/hive/rcfile_format.cc.o.d"
  "/root/repo/src/mapreduce/mapreduce.cc" "src/CMakeFiles/elephant.dir/mapreduce/mapreduce.cc.o" "gcc" "src/CMakeFiles/elephant.dir/mapreduce/mapreduce.cc.o.d"
  "/root/repo/src/pdw/catalog.cc" "src/CMakeFiles/elephant.dir/pdw/catalog.cc.o" "gcc" "src/CMakeFiles/elephant.dir/pdw/catalog.cc.o.d"
  "/root/repo/src/pdw/engine.cc" "src/CMakeFiles/elephant.dir/pdw/engine.cc.o" "gcc" "src/CMakeFiles/elephant.dir/pdw/engine.cc.o.d"
  "/root/repo/src/pdw/optimizer.cc" "src/CMakeFiles/elephant.dir/pdw/optimizer.cc.o" "gcc" "src/CMakeFiles/elephant.dir/pdw/optimizer.cc.o.d"
  "/root/repo/src/pdw/plans.cc" "src/CMakeFiles/elephant.dir/pdw/plans.cc.o" "gcc" "src/CMakeFiles/elephant.dir/pdw/plans.cc.o.d"
  "/root/repo/src/sim/resources.cc" "src/CMakeFiles/elephant.dir/sim/resources.cc.o" "gcc" "src/CMakeFiles/elephant.dir/sim/resources.cc.o.d"
  "/root/repo/src/sim/simulation.cc" "src/CMakeFiles/elephant.dir/sim/simulation.cc.o" "gcc" "src/CMakeFiles/elephant.dir/sim/simulation.cc.o.d"
  "/root/repo/src/sql/engine.cc" "src/CMakeFiles/elephant.dir/sql/engine.cc.o" "gcc" "src/CMakeFiles/elephant.dir/sql/engine.cc.o.d"
  "/root/repo/src/sql/parser.cc" "src/CMakeFiles/elephant.dir/sql/parser.cc.o" "gcc" "src/CMakeFiles/elephant.dir/sql/parser.cc.o.d"
  "/root/repo/src/sqlkv/btree.cc" "src/CMakeFiles/elephant.dir/sqlkv/btree.cc.o" "gcc" "src/CMakeFiles/elephant.dir/sqlkv/btree.cc.o.d"
  "/root/repo/src/sqlkv/buffer_pool.cc" "src/CMakeFiles/elephant.dir/sqlkv/buffer_pool.cc.o" "gcc" "src/CMakeFiles/elephant.dir/sqlkv/buffer_pool.cc.o.d"
  "/root/repo/src/sqlkv/engine.cc" "src/CMakeFiles/elephant.dir/sqlkv/engine.cc.o" "gcc" "src/CMakeFiles/elephant.dir/sqlkv/engine.cc.o.d"
  "/root/repo/src/sqlkv/lock_manager.cc" "src/CMakeFiles/elephant.dir/sqlkv/lock_manager.cc.o" "gcc" "src/CMakeFiles/elephant.dir/sqlkv/lock_manager.cc.o.d"
  "/root/repo/src/sqlkv/wal.cc" "src/CMakeFiles/elephant.dir/sqlkv/wal.cc.o" "gcc" "src/CMakeFiles/elephant.dir/sqlkv/wal.cc.o.d"
  "/root/repo/src/tpch/dbgen.cc" "src/CMakeFiles/elephant.dir/tpch/dbgen.cc.o" "gcc" "src/CMakeFiles/elephant.dir/tpch/dbgen.cc.o.d"
  "/root/repo/src/tpch/dss_benchmark.cc" "src/CMakeFiles/elephant.dir/tpch/dss_benchmark.cc.o" "gcc" "src/CMakeFiles/elephant.dir/tpch/dss_benchmark.cc.o.d"
  "/root/repo/src/tpch/queries.cc" "src/CMakeFiles/elephant.dir/tpch/queries.cc.o" "gcc" "src/CMakeFiles/elephant.dir/tpch/queries.cc.o.d"
  "/root/repo/src/tpch/refresh.cc" "src/CMakeFiles/elephant.dir/tpch/refresh.cc.o" "gcc" "src/CMakeFiles/elephant.dir/tpch/refresh.cc.o.d"
  "/root/repo/src/tpch/schema.cc" "src/CMakeFiles/elephant.dir/tpch/schema.cc.o" "gcc" "src/CMakeFiles/elephant.dir/tpch/schema.cc.o.d"
  "/root/repo/src/ycsb/driver.cc" "src/CMakeFiles/elephant.dir/ycsb/driver.cc.o" "gcc" "src/CMakeFiles/elephant.dir/ycsb/driver.cc.o.d"
  "/root/repo/src/ycsb/systems.cc" "src/CMakeFiles/elephant.dir/ycsb/systems.cc.o" "gcc" "src/CMakeFiles/elephant.dir/ycsb/systems.cc.o.d"
  "/root/repo/src/ycsb/workload.cc" "src/CMakeFiles/elephant.dir/ycsb/workload.cc.o" "gcc" "src/CMakeFiles/elephant.dir/ycsb/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
