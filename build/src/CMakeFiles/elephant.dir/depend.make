# Empty dependencies file for elephant.
# This may be replaced when dependencies are built.
