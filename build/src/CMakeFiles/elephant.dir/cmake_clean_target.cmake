file(REMOVE_RECURSE
  "libelephant.a"
)
