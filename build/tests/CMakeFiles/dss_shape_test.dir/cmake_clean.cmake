file(REMOVE_RECURSE
  "CMakeFiles/dss_shape_test.dir/dss_shape_test.cc.o"
  "CMakeFiles/dss_shape_test.dir/dss_shape_test.cc.o.d"
  "dss_shape_test"
  "dss_shape_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dss_shape_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
