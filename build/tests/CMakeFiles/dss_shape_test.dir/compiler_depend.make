# Empty compiler generated dependencies file for dss_shape_test.
# This may be replaced when dependencies are built.
