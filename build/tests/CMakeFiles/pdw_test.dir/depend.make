# Empty dependencies file for pdw_test.
# This may be replaced when dependencies are built.
