file(REMOVE_RECURSE
  "CMakeFiles/pdw_test.dir/pdw_test.cc.o"
  "CMakeFiles/pdw_test.dir/pdw_test.cc.o.d"
  "pdw_test"
  "pdw_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdw_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
