# Empty compiler generated dependencies file for sqlkv_test.
# This may be replaced when dependencies are built.
