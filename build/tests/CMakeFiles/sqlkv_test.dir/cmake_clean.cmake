file(REMOVE_RECURSE
  "CMakeFiles/sqlkv_test.dir/sqlkv_test.cc.o"
  "CMakeFiles/sqlkv_test.dir/sqlkv_test.cc.o.d"
  "sqlkv_test"
  "sqlkv_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqlkv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
