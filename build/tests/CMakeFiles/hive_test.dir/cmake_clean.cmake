file(REMOVE_RECURSE
  "CMakeFiles/hive_test.dir/hive_test.cc.o"
  "CMakeFiles/hive_test.dir/hive_test.cc.o.d"
  "hive_test"
  "hive_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hive_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
