file(REMOVE_RECURSE
  "CMakeFiles/rcfile_test.dir/rcfile_test.cc.o"
  "CMakeFiles/rcfile_test.dir/rcfile_test.cc.o.d"
  "rcfile_test"
  "rcfile_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcfile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
