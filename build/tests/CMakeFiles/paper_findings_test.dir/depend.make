# Empty dependencies file for paper_findings_test.
# This may be replaced when dependencies are built.
