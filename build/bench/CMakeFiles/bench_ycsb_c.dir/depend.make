# Empty dependencies file for bench_ycsb_c.
# This may be replaced when dependencies are built.
