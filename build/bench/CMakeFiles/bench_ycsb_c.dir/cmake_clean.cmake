file(REMOVE_RECURSE
  "CMakeFiles/bench_ycsb_c.dir/bench_ycsb_c.cc.o"
  "CMakeFiles/bench_ycsb_c.dir/bench_ycsb_c.cc.o.d"
  "bench_ycsb_c"
  "bench_ycsb_c.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ycsb_c.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
