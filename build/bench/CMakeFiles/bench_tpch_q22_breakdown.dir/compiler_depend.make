# Empty compiler generated dependencies file for bench_tpch_q22_breakdown.
# This may be replaced when dependencies are built.
