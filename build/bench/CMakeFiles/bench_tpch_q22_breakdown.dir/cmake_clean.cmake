file(REMOVE_RECURSE
  "CMakeFiles/bench_tpch_q22_breakdown.dir/bench_tpch_q22_breakdown.cc.o"
  "CMakeFiles/bench_tpch_q22_breakdown.dir/bench_tpch_q22_breakdown.cc.o.d"
  "bench_tpch_q22_breakdown"
  "bench_tpch_q22_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tpch_q22_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
