file(REMOVE_RECURSE
  "CMakeFiles/bench_tpch_load.dir/bench_tpch_load.cc.o"
  "CMakeFiles/bench_tpch_load.dir/bench_tpch_load.cc.o.d"
  "bench_tpch_load"
  "bench_tpch_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tpch_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
