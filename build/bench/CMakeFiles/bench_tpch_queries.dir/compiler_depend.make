# Empty compiler generated dependencies file for bench_tpch_queries.
# This may be replaced when dependencies are built.
