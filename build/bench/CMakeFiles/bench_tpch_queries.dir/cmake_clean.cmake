file(REMOVE_RECURSE
  "CMakeFiles/bench_tpch_queries.dir/bench_tpch_queries.cc.o"
  "CMakeFiles/bench_tpch_queries.dir/bench_tpch_queries.cc.o.d"
  "bench_tpch_queries"
  "bench_tpch_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tpch_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
