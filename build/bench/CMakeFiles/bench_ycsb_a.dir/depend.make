# Empty dependencies file for bench_ycsb_a.
# This may be replaced when dependencies are built.
