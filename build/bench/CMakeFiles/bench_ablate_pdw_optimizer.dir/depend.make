# Empty dependencies file for bench_ablate_pdw_optimizer.
# This may be replaced when dependencies are built.
