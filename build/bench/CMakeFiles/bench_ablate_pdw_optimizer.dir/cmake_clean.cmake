file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_pdw_optimizer.dir/bench_ablate_pdw_optimizer.cc.o"
  "CMakeFiles/bench_ablate_pdw_optimizer.dir/bench_ablate_pdw_optimizer.cc.o.d"
  "bench_ablate_pdw_optimizer"
  "bench_ablate_pdw_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_pdw_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
