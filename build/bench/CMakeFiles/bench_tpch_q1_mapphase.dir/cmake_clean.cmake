file(REMOVE_RECURSE
  "CMakeFiles/bench_tpch_q1_mapphase.dir/bench_tpch_q1_mapphase.cc.o"
  "CMakeFiles/bench_tpch_q1_mapphase.dir/bench_tpch_q1_mapphase.cc.o.d"
  "bench_tpch_q1_mapphase"
  "bench_tpch_q1_mapphase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tpch_q1_mapphase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
