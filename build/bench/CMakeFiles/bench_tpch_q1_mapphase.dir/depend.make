# Empty dependencies file for bench_tpch_q1_mapphase.
# This may be replaced when dependencies are built.
