file(REMOVE_RECURSE
  "CMakeFiles/bench_ycsb_b.dir/bench_ycsb_b.cc.o"
  "CMakeFiles/bench_ycsb_b.dir/bench_ycsb_b.cc.o.d"
  "bench_ycsb_b"
  "bench_ycsb_b.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ycsb_b.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
