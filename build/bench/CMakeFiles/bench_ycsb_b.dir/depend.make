# Empty dependencies file for bench_ycsb_b.
# This may be replaced when dependencies are built.
