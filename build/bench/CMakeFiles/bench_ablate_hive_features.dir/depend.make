# Empty dependencies file for bench_ablate_hive_features.
# This may be replaced when dependencies are built.
