file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_hive_features.dir/bench_ablate_hive_features.cc.o"
  "CMakeFiles/bench_ablate_hive_features.dir/bench_ablate_hive_features.cc.o.d"
  "bench_ablate_hive_features"
  "bench_ablate_hive_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_hive_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
