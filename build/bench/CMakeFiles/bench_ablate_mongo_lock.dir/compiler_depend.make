# Empty compiler generated dependencies file for bench_ablate_mongo_lock.
# This may be replaced when dependencies are built.
