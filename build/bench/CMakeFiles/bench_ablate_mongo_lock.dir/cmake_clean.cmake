file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_mongo_lock.dir/bench_ablate_mongo_lock.cc.o"
  "CMakeFiles/bench_ablate_mongo_lock.dir/bench_ablate_mongo_lock.cc.o.d"
  "bench_ablate_mongo_lock"
  "bench_ablate_mongo_lock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_mongo_lock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
