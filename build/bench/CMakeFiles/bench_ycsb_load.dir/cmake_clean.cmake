file(REMOVE_RECURSE
  "CMakeFiles/bench_ycsb_load.dir/bench_ycsb_load.cc.o"
  "CMakeFiles/bench_ycsb_load.dir/bench_ycsb_load.cc.o.d"
  "bench_ycsb_load"
  "bench_ycsb_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ycsb_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
