# Empty dependencies file for bench_ycsb_load.
# This may be replaced when dependencies are built.
