# Empty dependencies file for bench_ycsb_e.
# This may be replaced when dependencies are built.
