file(REMOVE_RECURSE
  "CMakeFiles/bench_ycsb_e.dir/bench_ycsb_e.cc.o"
  "CMakeFiles/bench_ycsb_e.dir/bench_ycsb_e.cc.o.d"
  "bench_ycsb_e"
  "bench_ycsb_e.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ycsb_e.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
