file(REMOVE_RECURSE
  "CMakeFiles/bench_tpch_layout.dir/bench_tpch_layout.cc.o"
  "CMakeFiles/bench_tpch_layout.dir/bench_tpch_layout.cc.o.d"
  "bench_tpch_layout"
  "bench_tpch_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tpch_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
