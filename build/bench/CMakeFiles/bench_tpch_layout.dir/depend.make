# Empty dependencies file for bench_tpch_layout.
# This may be replaced when dependencies are built.
