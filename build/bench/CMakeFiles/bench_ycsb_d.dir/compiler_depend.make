# Empty compiler generated dependencies file for bench_ycsb_d.
# This may be replaced when dependencies are built.
