file(REMOVE_RECURSE
  "CMakeFiles/bench_ycsb_d.dir/bench_ycsb_d.cc.o"
  "CMakeFiles/bench_ycsb_d.dir/bench_ycsb_d.cc.o.d"
  "bench_ycsb_d"
  "bench_ycsb_d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ycsb_d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
