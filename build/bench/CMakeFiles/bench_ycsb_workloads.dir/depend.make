# Empty dependencies file for bench_ycsb_workloads.
# This may be replaced when dependencies are built.
