file(REMOVE_RECURSE
  "CMakeFiles/bench_ycsb_workloads.dir/bench_ycsb_workloads.cc.o"
  "CMakeFiles/bench_ycsb_workloads.dir/bench_ycsb_workloads.cc.o.d"
  "bench_ycsb_workloads"
  "bench_ycsb_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ycsb_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
