#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>
#include <vector>

#include "common/distributions.h"
#include "common/histogram.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/units.h"

namespace elephant {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("key 42");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NotFound: key 42");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kTimedOut); ++c) {
    EXPECT_STRNE(StatusCodeToString(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = []() -> Status { return Status::IOError("disk"); };
  auto wrapper = [&]() -> Status {
    ELEPHANT_RETURN_NOT_OK(fails());
    return Status::OK();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kIOError);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::InvalidArgument("bad");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformRange(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ExponentialMean) {
  Rng rng(5);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(10.0);
  EXPECT_NEAR(sum / n, 10.0, 0.2);
}

// The paper (§3.3.1): "the values generated for the partkey and custkey
// fields in the mk_order function are negative numbers ... the RANDOM
// function overflows at the 16TB scale."
TEST(TpchRandomTest, Random32OverflowsAt16TbScale) {
  TpchRandom r(42);
  // partkey range at SF=16000: [1, 200000*16000] = [1, 3.2e9] > INT32_MAX.
  bool saw_negative = false;
  for (int i = 0; i < 100; ++i) {
    if (r.Random32(1, 200000LL * 16000) < 0) saw_negative = true;
  }
  EXPECT_TRUE(saw_negative);
}

TEST(TpchRandomTest, Random32FineAt4TbScale) {
  TpchRandom r(42);
  // At SF=4000 the range is 8e8 < INT32_MAX: no overflow.
  for (int i = 0; i < 1000; ++i) {
    int32_t v = r.Random32(1, 200000LL * 4000);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 200000LL * 4000);
  }
}

// The paper's fix: RANDOM64 never produces negatives for TPC-H ranges.
TEST(TpchRandomTest, Random64FixNeverNegative) {
  TpchRandom r(42);
  for (int i = 0; i < 10000; ++i) {
    int64_t v = r.Random64(1, 200000LL * 16000);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 200000LL * 16000);
  }
}

TEST(TpchRandomTest, AdvanceMatchesStepwise) {
  TpchRandom a(99), b(99);
  for (int i = 0; i < 577; ++i) a.Random64(0, 1000);
  // Each Random64 consumes one draw of the 48-bit stream.
  b.Advance(577);
  EXPECT_EQ(a.seed(), b.seed());
}

TEST(FnvTest, StableAndSpread) {
  EXPECT_EQ(Fnv1a64(uint64_t{1}), Fnv1a64(uint64_t{1}));
  EXPECT_NE(Fnv1a64(uint64_t{1}), Fnv1a64(uint64_t{2}));
  // Hash-sharding 1M keys over 128 shards should be near-even (+-5%).
  std::vector<int> counts(128, 0);
  for (uint64_t k = 0; k < 1000000; ++k) counts[Fnv1a64(k) % 128]++;
  for (int c : counts) {
    EXPECT_GT(c, 1000000 / 128 * 0.95);
    EXPECT_LT(c, 1000000 / 128 * 1.05);
  }
}

TEST(ZipfianTest, RangeAndSkew) {
  ZipfianGenerator gen(1000);
  Rng rng(3);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 100000; ++i) {
    uint64_t v = gen.Next(&rng);
    ASSERT_LT(v, 1000u);
    counts[v]++;
  }
  // Item 0 must be by far the most popular; theoretical P(0) ~ 1/zeta(n).
  EXPECT_GT(counts[0], counts[100] * 5);
  EXPECT_GT(counts[0], 100000 / 1000);  // far above uniform share
}

TEST(ZipfianTest, GrowsIncrementally) {
  ZipfianGenerator gen(100);
  Rng rng(4);
  gen.SetLastValue(199);  // now 200 items
  bool saw_above_100 = false;
  for (int i = 0; i < 50000; ++i) {
    uint64_t v = gen.Next(&rng);
    ASSERT_LT(v, 200u);
    if (v >= 100) saw_above_100 = true;
  }
  EXPECT_TRUE(saw_above_100);
}

TEST(ScrambledZipfianTest, SpreadsHotKeys) {
  ScrambledZipfianGenerator gen(10000);
  Rng rng(5);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 100000; ++i) counts[gen.Next(&rng)]++;
  // Find the two hottest keys: they should NOT be adjacent (scrambling).
  uint64_t hot1 = 0, hot2 = 0;
  int c1 = 0, c2 = 0;
  for (auto& [k, c] : counts) {
    if (c > c1) {
      hot2 = hot1;
      c2 = c1;
      hot1 = k;
      c1 = c;
    } else if (c > c2) {
      hot2 = k;
      c2 = c;
    }
  }
  EXPECT_GT(c1, 1000);  // still skewed
  EXPECT_GT(std::llabs(static_cast<long long>(hot1) -
                       static_cast<long long>(hot2)),
            1);  // but scattered
}

TEST(LatestTest, FavorsRecentKeys) {
  LatestGenerator gen(10000);
  Rng rng(6);
  int in_top_100 = 0;
  for (int i = 0; i < 10000; ++i) {
    uint64_t v = gen.Next(&rng);
    ASSERT_LT(v, 10000u);
    if (v >= 9900) in_top_100++;
  }
  // The newest 1% of keys should draw far more than 1% of requests.
  EXPECT_GT(in_top_100, 2000);
}

TEST(LatestTest, TracksInserts) {
  LatestGenerator gen(100);
  Rng rng(7);
  gen.SetLastValue(100);  // one append
  bool saw_new_key = false;
  for (int i = 0; i < 1000; ++i) {
    if (gen.Next(&rng) == 100) saw_new_key = true;
  }
  EXPECT_TRUE(saw_new_key);
}

TEST(DiscreteTest, RespectsWeights) {
  DiscreteGenerator gen;
  gen.Add(0, 0.95);
  gen.Add(1, 0.05);
  Rng rng(8);
  int ones = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (gen.Next(&rng) == 1) ones++;
  }
  EXPECT_NEAR(static_cast<double>(ones) / n, 0.05, 0.01);
  EXPECT_DOUBLE_EQ(gen.WeightOf(1), 0.05);
}

TEST(HistogramTest, BasicStats) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.Record(i);
  EXPECT_EQ(h.count(), 100);
  EXPECT_EQ(h.min(), 1);
  EXPECT_EQ(h.max(), 100);
  EXPECT_NEAR(h.Mean(), 50.5, 0.01);
  EXPECT_NEAR(h.Percentile(50), 50, 3);
  EXPECT_NEAR(h.Percentile(99), 99, 5);
}

TEST(HistogramTest, LargeValuesBucketed) {
  Histogram h;
  h.Record(1000000);  // 1 second in micros
  h.Record(2000000);
  EXPECT_EQ(h.count(), 2);
  EXPECT_EQ(h.max(), 2000000);
  // Percentile precision within bucket width (12.5%).
  EXPECT_NEAR(h.Percentile(40), 1000000, 130000);
}

TEST(HistogramTest, MergeCombines) {
  Histogram a, b;
  a.Record(10);
  b.Record(20);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2);
  EXPECT_EQ(a.min(), 10);
  EXPECT_EQ(a.max(), 20);
}

TEST(WindowedSeriesTest, PaperMeasurementProtocol) {
  // 30-minute run measured every 10s = 180 windows; report mean and std
  // error over the last 10 minutes = 60 windows.
  WindowedSeries s;
  for (int i = 0; i < 120; ++i) s.AddWindow(1000.0);  // warmup plateau
  for (int i = 0; i < 60; ++i) s.AddWindow(2000.0);   // steady state
  EXPECT_DOUBLE_EQ(s.MeanOfLast(60), 2000.0);
  EXPECT_DOUBLE_EQ(s.StdErrorOfLast(60), 0.0);
}

TEST(StatsTest, Means) {
  std::vector<double> xs = {1, 4, 16};
  EXPECT_DOUBLE_EQ(ArithmeticMean(xs), 7.0);
  EXPECT_NEAR(GeometricMean(xs), 4.0, 1e-9);
  EXPECT_DOUBLE_EQ(ArithmeticMean({}), 0.0);
}

TEST(StatsTest, RunningStat) {
  RunningStat rs;
  rs.Add(2);
  rs.Add(4);
  rs.Add(9);
  EXPECT_EQ(rs.count(), 3);
  EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
  EXPECT_DOUBLE_EQ(rs.min(), 2.0);
  EXPECT_DOUBLE_EQ(rs.max(), 9.0);
}

TEST(StringUtilTest, Format) {
  EXPECT_EQ(StrFormat("%d-%s", 5, "x"), "5-x");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
}

TEST(StringUtilTest, JoinSplit) {
  EXPECT_EQ(StrJoin({"a", "b", "c"}, ","), "a,b,c");
  auto parts = StrSplit("a|b||c", '|');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
}

TEST(StringUtilTest, HumanUnits) {
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(2 * kMB), "2.0 MB");
  EXPECT_EQ(HumanMicros(1500), "1.5 ms");
  EXPECT_EQ(HumanMicros(90 * kSecond), "1.5 min");
}

// The paper: keys are the string form of an integer zero-padded to 24
// bytes.
TEST(StringUtilTest, YcsbKeyFormat) {
  EXPECT_EQ(ZeroPadKey(42, 24), "000000000000000000000042");
  EXPECT_EQ(ZeroPadKey(42, 24).size(), 24u);
}

TEST(UnitsTest, Conversions) {
  EXPECT_EQ(SecondsToSimTime(1.5), 1500000);
  EXPECT_DOUBLE_EQ(SimTimeToSeconds(2500000), 2.5);
  EXPECT_DOUBLE_EQ(SimTimeToMillis(2500), 2.5);
}

}  // namespace
}  // namespace elephant
