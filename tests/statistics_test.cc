// Statistics over real dbgen data, and the calibration-validation tests
// promised in DESIGN.md: the selectivity constants baked into the Hive
// and PDW plan volumes must match what the reference executor measures
// on generated data.

#include <gtest/gtest.h>

#include "common/date.h"
#include "exec/statistics.h"
#include "tpch/dbgen.h"

namespace elephant::exec {
namespace {

using tpch::TpchDatabase;

const TpchDatabase& Db() {
  static const TpchDatabase* db =
      new TpchDatabase(tpch::GenerateDatabase(0.02));
  return *db;
}

TEST(StatisticsTest, BasicStatsOnFixture) {
  Table t({{"x", ValueType::kInt}, {"s", ValueType::kString}});
  t.AddRow({Value{int64_t{5}}, Value{std::string("a")}});
  t.AddRow({Value{int64_t{2}}, Value{std::string("b")}});
  t.AddRow({Value{int64_t{5}}, Value{std::string("")}});
  TableStats stats = ComputeStats(t);
  EXPECT_EQ(stats.rows, 3);
  const ColumnStats* x = stats.Find("x");
  ASSERT_NE(x, nullptr);
  EXPECT_EQ(AsInt(x->min), 2);
  EXPECT_EQ(AsInt(x->max), 5);
  EXPECT_EQ(x->distinct, 2);
  EXPECT_EQ(stats.Find("s")->null_like, 1);
  EXPECT_EQ(stats.Find("missing"), nullptr);
}

TEST(StatisticsTest, TpchColumnDomains) {
  TableStats orders = ComputeStats(Db().orders);
  // Orderdate spans dbgen's calendar.
  const ColumnStats* od = orders.Find("o_orderdate");
  ASSERT_NE(od, nullptr);
  EXPECT_GE(AsInt(od->min), tpch::StartDate());
  EXPECT_LE(AsInt(od->max), tpch::EndDate());
  // Five distinct priorities, three statuses.
  EXPECT_EQ(orders.Find("o_orderpriority")->distinct, 5);
  EXPECT_LE(orders.Find("o_orderstatus")->distinct, 3);
  TableStats lineitem = ComputeStats(Db().lineitem);
  EXPECT_EQ(lineitem.Find("l_shipmode")->distinct, 7);
  EXPECT_EQ(lineitem.Find("l_returnflag")->distinct, 3);
}

// --- Calibration validation: plan constants vs measured fractions ----

TEST(CalibrationTest, Q1ShipdateFilterSelectivity) {
  // Plans assume nearly the whole lineitem table passes (paper Q1).
  DateCode cutoff = MakeDate(1998, 12, 1) - 90;
  int sd = Db().lineitem.ColIndex("l_shipdate");
  double sel = Selectivity(Db().lineitem, [&](const Row& r) {
    return AsInt(r[sd]) <= cutoff;
  });
  EXPECT_NEAR(sel, 0.985, 0.01);
}

TEST(CalibrationTest, Q3BuildingSegmentIsOneFifth) {
  int seg = Db().customer.ColIndex("c_mktsegment");
  double sel = Selectivity(Db().customer, [&](const Row& r) {
    return AsString(r[seg]) == "BUILDING";
  });
  EXPECT_NEAR(sel, 0.2, 0.02);  // 1 of 5 segments
}

TEST(CalibrationTest, Q5OrderdateYearWindow) {
  // The Hive/PDW Q5 plans carry ~15% of orders (one year of ~6.5).
  DateCode lo = MakeDate(1994, 1, 1);
  DateCode hi = AddYears(lo, 1);
  int od = Db().orders.ColIndex("o_orderdate");
  double sel = Selectivity(Db().orders, [&](const Row& r) {
    int64_t d = AsInt(r[od]);
    return d >= lo && d < hi;
  });
  EXPECT_NEAR(sel, 0.152, 0.02);
}

TEST(CalibrationTest, Q6CombinedFilter) {
  DateCode lo = MakeDate(1994, 1, 1);
  DateCode hi = AddYears(lo, 1);
  const Table& l = Db().lineitem;
  int sd = l.ColIndex("l_shipdate");
  int di = l.ColIndex("l_discount");
  int qt = l.ColIndex("l_quantity");
  double sel = Selectivity(l, [&](const Row& r) {
    int64_t d = AsInt(r[sd]);
    double disc = AsDouble(r[di]);
    return d >= lo && d < hi && disc >= 0.05 - 1e-9 &&
           disc <= 0.07 + 1e-9 && AsDouble(r[qt]) < 24;
  });
  // ~15.2% (year) x ~27% (3 of 11 discounts) x ~46% (qty < 24) ~ 1.9%.
  EXPECT_NEAR(sel, 0.019, 0.006);
}

TEST(CalibrationTest, Q19ShipmodeInstructPushdown) {
  // hive/plans.cc pushes shipmode IN (AIR, AIR REG) AND shipinstruct =
  // DELIVER IN PERSON into Q19's mappers at ~7.1%.
  const Table& l = Db().lineitem;
  int mode = l.ColIndex("l_shipmode");
  int instr = l.ColIndex("l_shipinstruct");
  double sel = Selectivity(l, [&](const Row& r) {
    const std::string& m = AsString(r[mode]);
    return (m == "AIR" || m == "REG AIR") &&
           AsString(r[instr]) == "DELIVER IN PERSON";
  });
  EXPECT_NEAR(sel, 2.0 / 7 * 0.25, 0.01);
}

TEST(CalibrationTest, ReturnedFlagFraction) {
  // Q10's plans carry ~24.7% of lineitems (returnflag = R: half of the
  // ~49% shipped before the spec's CURRENTDATE).
  int rf = Db().lineitem.ColIndex("l_returnflag");
  double sel = Selectivity(Db().lineitem, [&](const Row& r) {
    return AsString(r[rf]) == "R";
  });
  EXPECT_NEAR(sel, 0.247, 0.02);
}

TEST(CalibrationTest, LateLineitemsForQ4) {
  // commitdate < receiptdate: ~63% per the plan volumes.
  const Table& l = Db().lineitem;
  int cd = l.ColIndex("l_commitdate");
  int rd = l.ColIndex("l_receiptdate");
  double sel = Selectivity(l, [&](const Row& r) {
    return AsInt(r[cd]) < AsInt(r[rd]);
  });
  EXPECT_NEAR(sel, 0.63, 0.05);
}

TEST(CalibrationTest, JoinFanouts) {
  // Every lineitem has its order; two thirds of customers have orders.
  EXPECT_DOUBLE_EQ(JoinMatchFraction(Db().lineitem, Db().orders,
                                     "l_orderkey", "o_orderkey"),
                   1.0);
  double cust_with_orders = JoinMatchFraction(
      Db().customer, Db().orders, "c_custkey", "o_custkey");
  // custkey % 3 == 0 never orders; the rest nearly all do at SF >= 0.02.
  EXPECT_NEAR(cust_with_orders, 2.0 / 3, 0.05);
}

}  // namespace
}  // namespace elephant::exec
