// Property and stress tests on substrate invariants: simulation
// determinism, RwLock safety under random schedules, histogram
// percentiles against an exact reference, LRU behaviour against a
// reference model, and statistical properties of the generators.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <list>
#include <map>
#include <vector>

#include "common/distributions.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "sim/resources.h"
#include "sim/simulation.h"
#include "sqlkv/buffer_pool.h"
#include "ycsb/driver.h"

namespace elephant {
namespace {

// ---------------------------------------------------------- determinism

sim::Task RandomWorker(sim::Simulation* sim, sim::Server* server, Rng* rng,
                       int ops, uint64_t* checksum) {
  for (int i = 0; i < ops; ++i) {
    co_await server->Acquire(static_cast<SimTime>(rng->Uniform(100)) + 1);
    // Unsigned: the polynomial hash wraps by design.
    *checksum = *checksum * 31 + static_cast<uint64_t>(sim->now());
    co_await sim->Delay(static_cast<SimTime>(rng->Uniform(50)));
  }
}

uint64_t RunRandomSchedule(uint64_t seed) {
  sim::Simulation sim;
  sim::Server server(&sim, 3);
  Rng rng(seed);
  uint64_t checksum = 0;
  std::vector<std::unique_ptr<Rng>> rngs;
  for (int w = 0; w < 20; ++w) {
    rngs.push_back(std::make_unique<Rng>(seed ^ (w * 0x9E37u)));
    RandomWorker(&sim, &server, rngs.back().get(), 50, &checksum);
  }
  sim.Run();
  return checksum;
}

TEST(DeterminismTest, IdenticalSeedsIdenticalSchedules) {
  // The whole reproduction depends on the DES being deterministic.
  EXPECT_EQ(RunRandomSchedule(1), RunRandomSchedule(1));
  EXPECT_EQ(RunRandomSchedule(99), RunRandomSchedule(99));
  EXPECT_NE(RunRandomSchedule(1), RunRandomSchedule(2));
}

TEST(DeterminismTest, YcsbRunsAreReproducible) {
  ycsb::DriverOptions opt;
  opt.record_count = 40000;
  opt.warmup = 500 * kMillisecond;
  opt.measure = kSecond;
  auto a = ycsb::RunOnePoint(ycsb::SystemKind::kSqlCs,
                             ycsb::WorkloadSpec::B(), 5000, opt);
  auto b = ycsb::RunOnePoint(ycsb::SystemKind::kSqlCs,
                             ycsb::WorkloadSpec::B(), 5000, opt);
  EXPECT_DOUBLE_EQ(a.achieved_ops_per_sec, b.achieved_ops_per_sec);
  EXPECT_DOUBLE_EQ(a.MeanLatencyMs(ycsb::OpType::kRead),
                   b.MeanLatencyMs(ycsb::OpType::kRead));
}

// ------------------------------------------------------- RwLock safety

struct LockAuditor {
  int readers = 0;
  bool writer = false;
  bool violated = false;

  void EnterRead() {
    if (writer) violated = true;
    readers++;
  }
  void ExitRead() { readers--; }
  void EnterWrite() {
    if (writer || readers > 0) violated = true;
    writer = true;
  }
  void ExitWrite() { writer = false; }
};

sim::Task RandomLockUser(sim::Simulation* sim, sim::RwLock* lock, Rng* rng,
                         LockAuditor* audit, int ops, int* done) {
  for (int i = 0; i < ops; ++i) {
    co_await sim->Delay(static_cast<SimTime>(rng->Uniform(20)));
    bool exclusive = rng->Bernoulli(0.3);
    if (exclusive) {
      co_await lock->AcquireExclusive();
      audit->EnterWrite();
      co_await sim->Delay(static_cast<SimTime>(rng->Uniform(10)) + 1);
      audit->ExitWrite();
      lock->Release(true);
    } else {
      co_await lock->AcquireShared();
      audit->EnterRead();
      co_await sim->Delay(static_cast<SimTime>(rng->Uniform(10)) + 1);
      audit->ExitRead();
      lock->Release(false);
    }
  }
  (*done)++;
}

TEST(RwLockPropertyTest, MutualExclusionUnderRandomSchedules) {
  for (uint64_t seed : {1u, 7u, 42u, 1234u}) {
    sim::Simulation sim;
    sim::RwLock lock(&sim);
    LockAuditor audit;
    int done = 0;
    std::vector<std::unique_ptr<Rng>> rngs;
    for (int w = 0; w < 16; ++w) {
      rngs.push_back(std::make_unique<Rng>(seed + w * 7919));
      RandomLockUser(&sim, &lock, rngs.back().get(), &audit, 100, &done);
    }
    sim.Run();
    EXPECT_FALSE(audit.violated) << "seed " << seed;
    EXPECT_EQ(done, 16) << "seed " << seed << ": starvation/deadlock";
    EXPECT_EQ(audit.readers, 0);
    EXPECT_FALSE(audit.writer);
  }
}

// --------------------------------------------------- histogram accuracy

TEST(HistogramPropertyTest, PercentilesWithinBucketResolution) {
  Rng rng(5);
  for (int trial = 0; trial < 5; ++trial) {
    Histogram h;
    std::vector<int64_t> exact;
    for (int i = 0; i < 20000; ++i) {
      // Log-uniform values across six decades.
      double u = rng.NextDouble() * 6.0;
      int64_t v = static_cast<int64_t>(std::pow(10.0, u));
      h.Record(v);
      exact.push_back(v);
    }
    std::sort(exact.begin(), exact.end());
    for (double p : {10.0, 50.0, 90.0, 99.0}) {
      int64_t approx = h.Percentile(p);
      int64_t truth =
          exact[static_cast<size_t>(p / 100.0 * (exact.size() - 1))];
      // Log-linear buckets: <= 12.5% relative error plus one bucket.
      EXPECT_LE(std::abs(approx - truth),
                truth / 7 + 2)
          << "p" << p << " trial " << trial;
    }
    EXPECT_EQ(h.count(), 20000);
  }
}

// ------------------------------------------------------ LRU reference

TEST(BufferPoolPropertyTest, MatchesReferenceLru) {
  sqlkv::BufferPool pool(16 * 4096, 4096);
  std::list<uint64_t> ref;  // front = MRU
  Rng rng(11);
  for (int i = 0; i < 50000; ++i) {
    uint64_t page = rng.Uniform(64);
    auto access = pool.Touch(page, false);
    // Reference model.
    auto it = std::find(ref.begin(), ref.end(), page);
    bool ref_hit = it != ref.end();
    if (ref_hit) ref.erase(it);
    ref.push_front(page);
    uint64_t ref_evicted = 0;
    bool ref_evicts = false;
    if (ref.size() > 16) {
      ref_evicted = ref.back();
      ref.pop_back();
      ref_evicts = true;
    }
    ASSERT_EQ(access.hit, ref_hit) << "op " << i;
    ASSERT_EQ(access.evicted, ref_evicts) << "op " << i;
    if (ref_evicts) {
      ASSERT_EQ(access.evicted_page, ref_evicted) << "op " << i;
    }
  }
}

// ------------------------------------------------- generator statistics

TEST(GeneratorPropertyTest, ZipfianMassIsMonotoneInRank) {
  ZipfianGenerator gen(1000, 0.99);
  Rng rng(13);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 300000; ++i) counts[gen.Next(&rng)]++;
  // Aggregate into deciles of rank: each decile's mass must not be
  // (materially) below the next one's.
  std::vector<int64_t> deciles(10, 0);
  for (int r = 0; r < 1000; ++r) deciles[r / 100] += counts[r];
  for (int d = 0; d + 1 < 10; ++d) {
    EXPECT_GE(deciles[d] * 1.05, deciles[d + 1]) << "decile " << d;
  }
  EXPECT_GT(deciles[0], deciles[9] * 3);
}

TEST(GeneratorPropertyTest, UniformIsFlat) {
  UniformGenerator gen(0, 99);
  Rng rng(17);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 200000; ++i) counts[gen.Next(&rng)]++;
  for (int c : counts) {
    EXPECT_GT(c, 1600);
    EXPECT_LT(c, 2400);
  }
}

TEST(GeneratorPropertyTest, LatestNeverExceedsLastInsert) {
  LatestGenerator gen(1000);
  Rng rng(19);
  for (uint64_t last = 999; last < 1200; last += 7) {
    gen.SetLastValue(last);
    for (int i = 0; i < 200; ++i) {
      EXPECT_LE(gen.Next(&rng), last);
    }
  }
}

// --------------------------------------------------- server conservation

sim::Task OneAcquire(sim::Server* server, SimTime service, int* completed) {
  co_await server->Acquire(service);
  (*completed)++;
}

TEST(ServerPropertyTest, WorkConservation) {
  // Total busy time equals the sum of service demands, makespan is at
  // least busy/capacity, and all requests complete.
  for (uint64_t seed : {3u, 33u, 333u}) {
    sim::Simulation sim;
    sim::Server server(&sim, 4);
    Rng rng(seed);
    SimTime total_demand = 0;
    int completed = 0;
    const int n = 500;
    for (int i = 0; i < n; ++i) {
      SimTime service = static_cast<SimTime>(rng.Uniform(200)) + 1;
      total_demand += service;
      OneAcquire(&server, service, &completed);
    }
    sim.Run();
    EXPECT_EQ(completed, n);
    EXPECT_EQ(server.busy_time(), total_demand);
    EXPECT_GE(sim.now(), total_demand / 4);
    EXPECT_LE(sim.now(), total_demand);
  }
}

}  // namespace
}  // namespace elephant
