#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/rng.h"
#include "sim/fault.h"
#include "ycsb/driver.h"
#include "ycsb/systems.h"
#include "ycsb/workload.h"

namespace elephant::ycsb {
namespace {

// Small, fast configuration for unit tests.
DriverOptions TestOptions(int64_t target = 5000) {
  DriverOptions opt;
  opt.record_count = 80000;
  opt.warmup = kSecond;
  opt.measure = 2 * kSecond;
  opt.target_throughput = target;
  return opt;
}

TEST(WorkloadTest, Table6Definitions) {
  WorkloadSpec a = WorkloadSpec::A();
  EXPECT_DOUBLE_EQ(a.read, 0.5);
  EXPECT_DOUBLE_EQ(a.update, 0.5);
  WorkloadSpec b = WorkloadSpec::B();
  EXPECT_DOUBLE_EQ(b.read, 0.95);
  EXPECT_DOUBLE_EQ(b.update, 0.05);
  WorkloadSpec c = WorkloadSpec::C();
  EXPECT_DOUBLE_EQ(c.read, 1.0);
  WorkloadSpec d = WorkloadSpec::D();
  EXPECT_DOUBLE_EQ(d.insert, 0.05);
  EXPECT_EQ(d.distribution, Distribution::kLatest);
  WorkloadSpec e = WorkloadSpec::E();
  EXPECT_DOUBLE_EQ(e.scan, 0.95);
  EXPECT_EQ(WorkloadSpec::ByName('b').name, "B");
}

TEST(SystemsTest, SqlCsShardsByHashAcross8Nodes) {
  OltpTestbed testbed;
  SqlCsSystem sys(&testbed, {});
  EXPECT_EQ(sys.num_shards(), 8);
  ASSERT_TRUE(sys.LoadDataset(8000, 1024).ok());
  int64_t total = 0;
  for (int i = 0; i < 8; ++i) {
    int64_t n = static_cast<int64_t>(sys.engine(i).btree().size());
    total += n;
    EXPECT_GT(n, 800);  // roughly even
    EXPECT_LT(n, 1200);
  }
  EXPECT_EQ(total, 8000);
}

TEST(SystemsTest, MongoSystemsHave128Shards) {
  OltpTestbed testbed;
  MongoCsSystem cs(&testbed, {});
  EXPECT_EQ(cs.num_shards(), 128);
  OltpTestbed testbed2;
  MongoAsSystem as(&testbed2, {});
  EXPECT_EQ(as.num_shards(), 128);
}

TEST(SystemsTest, MongoAsLoadPreSplitsAndBalances) {
  OltpTestbed testbed;
  MongoAsSystem::Options opt;
  MongoAsSystem sys(&testbed, opt);
  ASSERT_TRUE(sys.LoadDataset(128000, 1024).ok());
  // Pre-split chunks spread documents across every shard.
  int64_t min_docs = INT64_MAX, max_docs = 0;
  for (int i = 0; i < sys.num_shards(); ++i) {
    min_docs = std::min(min_docs, sys.mongod(i).docs());
    max_docs = std::max(max_docs, sys.mongod(i).docs());
  }
  EXPECT_GT(min_docs, 0);
  EXPECT_LT(max_docs, 3 * min_docs);
}

TEST(DriverTest, AchievesLowTargets) {
  RunResult r =
      RunOnePoint(SystemKind::kSqlCs, WorkloadSpec::C(), 5000, TestOptions());
  EXPECT_NEAR(r.achieved_ops_per_sec, 5000, 350);
  EXPECT_FALSE(r.crashed);
  EXPECT_GT(r.MeanLatencyMs(OpType::kRead), 0);
}

TEST(DriverTest, SaturationCapsThroughput) {
  RunResult low = RunOnePoint(SystemKind::kMongoCs, WorkloadSpec::C(), 2000,
                              TestOptions(2000));
  RunResult high = RunOnePoint(SystemKind::kMongoCs, WorkloadSpec::C(),
                               400000, TestOptions(400000));
  // Saturated: achieved far below target, latency far above the
  // unloaded level (the knee shape of Figures 2-6).
  EXPECT_LT(high.achieved_ops_per_sec, 400000 * 0.8);
  EXPECT_GT(high.MeanLatencyMs(OpType::kRead),
            2 * low.MeanLatencyMs(OpType::kRead));
}

TEST(DriverTest, OpMixMatchesWorkload) {
  RunResult r = RunOnePoint(SystemKind::kSqlCs, WorkloadSpec::B(), 10000,
                            TestOptions(10000));
  double reads = static_cast<double>(r.per_op[OpType::kRead].count);
  double updates = static_cast<double>(r.per_op[OpType::kUpdate].count);
  EXPECT_NEAR(updates / (reads + updates), 0.05, 0.01);
}

TEST(DriverTest, MeasurementProtocolReportsWindows) {
  RunResult r = RunOnePoint(SystemKind::kSqlCs, WorkloadSpec::C(), 10000,
                            TestOptions(10000));
  EXPECT_GT(r.ops_measured, 0);
  // Std error is defined and small relative to the mean at steady state.
  const auto& stats = r.per_op[OpType::kRead];
  EXPECT_GE(stats.latency_stderr_ms, 0);
  EXPECT_LT(stats.latency_stderr_ms, stats.mean_latency_ms);
}

// ---- Retry policy ----------------------------------------------------

TEST(RetryTest, BackoffScheduleIsDeterministicPerSeed) {
  RetryPolicy policy;
  policy.max_retries = 6;
  // Two streams from the same seed produce the same jittered schedule.
  Rng a(42), b(42);
  std::vector<SimTime> schedule;
  for (int attempt = 1; attempt <= 6; ++attempt) {
    SimTime delay = policy.BackoffFor(attempt, &a);
    schedule.push_back(delay);
    EXPECT_EQ(delay, policy.BackoffFor(attempt, &b));
    EXPECT_GE(delay, 1);  // never a zero-delay busy retry
  }
  // A different seed diverges somewhere in the schedule.
  Rng c(43);
  bool diverged = false;
  for (int attempt = 1; attempt <= 6; ++attempt) {
    diverged |= policy.BackoffFor(attempt, &c) != schedule[attempt - 1];
  }
  EXPECT_TRUE(diverged);
}

TEST(RetryTest, ZeroJitterGivesCappedExponential) {
  RetryPolicy policy;
  policy.max_retries = 8;
  policy.jitter = 0.0;
  Rng rng(7);
  EXPECT_EQ(policy.BackoffFor(1, &rng), 1 * kMillisecond);
  EXPECT_EQ(policy.BackoffFor(2, &rng), 2 * kMillisecond);
  EXPECT_EQ(policy.BackoffFor(3, &rng), 4 * kMillisecond);
  EXPECT_EQ(policy.BackoffFor(7, &rng), 64 * kMillisecond);
  EXPECT_EQ(policy.BackoffFor(8, &rng), 64 * kMillisecond);  // capped
}

TEST(RetryTest, BudgetExhaustionSurfacesAsErrorOutcome) {
  // One long partition between server node 0 and client node 8: ops from
  // node 8's threads aimed at shard 0 fail fast, burn their whole retry
  // budget, and must surface as transient errors — not hangs, not lost
  // acknowledged writes.
  sim::FaultPlan plan;
  plan.seed = 1;
  sim::FaultEvent ev;
  ev.kind = sim::FaultKind::kPartition;
  ev.at = 600 * kMillisecond;
  ev.duration = 1500 * kMillisecond;
  ev.node = 0;
  ev.peer = OltpTestbed::kServerNodes;  // first client node
  plan.events.push_back(ev);

  DriverOptions opt = TestOptions();
  opt.record_count = 20000;
  opt.warmup = 500 * kMillisecond;
  opt.measure = 1500 * kMillisecond;
  opt.retry.max_retries = 2;  // small budget so it actually exhausts
  ChaosOutcome out = ycsb::RunChaosPoint(SystemKind::kSqlCs,
                                         WorkloadSpec::A(), 4000, opt, plan);
  EXPECT_EQ(out.faults_injected, 1);
  EXPECT_GT(out.result.retries, 0);
  EXPECT_GT(out.result.transient_errors, 0);
  // Partitioned ops were never acknowledged, so nothing durable is lost.
  EXPECT_EQ(out.ledger.lost_acknowledged, 0);
}

TEST(RetryTest, NoRetriesWhenNoFaultsInjected) {
  DriverOptions opt = TestOptions();
  opt.record_count = 20000;
  opt.warmup = 500 * kMillisecond;
  opt.measure = kSecond;
  opt.retry.max_retries = 4;
  ChaosOutcome out =
      ycsb::RunChaosPoint(SystemKind::kSqlCs, WorkloadSpec::A(), 4000, opt,
                          sim::FaultPlan());
  EXPECT_EQ(out.faults_injected, 0);
  EXPECT_EQ(out.result.retries, 0);
  EXPECT_EQ(out.result.timeouts, 0);
  EXPECT_EQ(out.result.transient_errors, 0);
  EXPECT_EQ(out.ledger.lost_acknowledged, 0);
}

// ---- Paper shape tests ----------------------------------------------
// These run at the calibrated dataset size (the tiny TestOptions scale
// distorts cache geometry).

DriverOptions ShapeOptions(int64_t target) {
  DriverOptions opt;
  opt.record_count = 800000;  // half the bench scale: same geometry
  opt.warmup = 1500 * kMillisecond;
  opt.measure = 2 * kSecond;
  opt.target_throughput = target;
  return opt;
}

TEST(ShapeTest, WorkloadC_SqlBeatsMongo) {
  DriverOptions opt = ShapeOptions(200000);
  RunResult sql =
      RunOnePoint(SystemKind::kSqlCs, WorkloadSpec::C(), 200000, opt);
  RunResult mongo =
      RunOnePoint(SystemKind::kMongoAs, WorkloadSpec::C(), 200000, opt);
  EXPECT_GT(sql.achieved_ops_per_sec, mongo.achieved_ops_per_sec * 1.5);
  EXPECT_LT(sql.MeanLatencyMs(OpType::kRead),
            mongo.MeanLatencyMs(OpType::kRead));
}

TEST(ShapeTest, WorkloadA_MongoLatenciesBlowUp) {
  DriverOptions opt = ShapeOptions(20000);
  RunResult sql =
      RunOnePoint(SystemKind::kSqlCs, WorkloadSpec::A(), 20000, opt);
  RunResult mongo =
      RunOnePoint(SystemKind::kMongoAs, WorkloadSpec::A(), 20000, opt);
  EXPECT_GT(mongo.MeanLatencyMs(OpType::kUpdate),
            sql.MeanLatencyMs(OpType::kUpdate));
  EXPECT_GE(sql.achieved_ops_per_sec, mongo.achieved_ops_per_sec * 0.95);
}

TEST(ShapeTest, WorkloadA_ReadUncommittedCutsReadLatency) {
  DriverOptions opt = ShapeOptions(40000);
  RunResult rc = RunOnePoint(SystemKind::kSqlCs, WorkloadSpec::A(), 40000,
                             opt, /*read_uncommitted=*/false);
  RunResult ru = RunOnePoint(SystemKind::kSqlCs, WorkloadSpec::A(), 40000,
                             opt, /*read_uncommitted=*/true);
  // §3.4.3: reads stop waiting behind writers.
  EXPECT_LT(ru.MeanLatencyMs(OpType::kRead),
            rc.MeanLatencyMs(OpType::kRead) + 0.01);
}

TEST(ShapeTest, WorkloadD_MongoAsCrashesAboveTwentyK) {
  DriverOptions opt = ShapeOptions(40000);
  RunResult as =
      RunOnePoint(SystemKind::kMongoAs, WorkloadSpec::D(), 40000, opt);
  EXPECT_TRUE(as.crashed);
  // The hash-sharded systems spread the "latest" hotspot and survive.
  RunResult cs =
      RunOnePoint(SystemKind::kMongoCs, WorkloadSpec::D(), 40000, opt);
  EXPECT_FALSE(cs.crashed);
  RunResult sql =
      RunOnePoint(SystemKind::kSqlCs, WorkloadSpec::D(), 40000, opt);
  EXPECT_FALSE(sql.crashed);
}

TEST(ShapeTest, WorkloadE_RangePartitioningWinsScans) {
  DriverOptions opt = ShapeOptions(4000);
  opt.measure = 2 * kSecond;
  RunResult as =
      RunOnePoint(SystemKind::kMongoAs, WorkloadSpec::E(), 4000, opt);
  RunResult sql =
      RunOnePoint(SystemKind::kSqlCs, WorkloadSpec::E(), 4000, opt);
  // Mongo-AS answers a scan from one shard; SQL-CS fans out to all.
  EXPECT_GT(as.achieved_ops_per_sec, sql.achieved_ops_per_sec);
  EXPECT_LT(as.MeanLatencyMs(OpType::kScan),
            sql.MeanLatencyMs(OpType::kScan));
  // But its appends (all to the last chunk + split stalls) are far
  // worse than SQL-CS's.
  EXPECT_GT(as.MeanLatencyMs(OpType::kInsert),
            sql.MeanLatencyMs(OpType::kInsert) * 3);
}

TEST(LoadTest, TimedLoadOrdering) {
  // §3.4.2: Mongo-CS loads fastest; SQL-CS pays per-row transactional
  // inserts (WAL flushes); Mongo-AS sits between (mongos + config
  // overhead on every insert).
  DriverOptions opt;
  opt.record_count = 40000;
  auto load_time = [&](SystemKind kind) {
    OltpTestbed testbed;
    int64_t mem = opt.record_count * opt.record_bytes / 8 / 2;
    std::unique_ptr<DataServingSystem> system;
    if (kind == SystemKind::kSqlCs) {
      sqlkv::SqlEngineOptions sql;
      sql.memory_bytes = mem;
      system = std::make_unique<SqlCsSystem>(&testbed, sql);
    } else if (kind == SystemKind::kMongoCs) {
      docstore::MongodOptions m;
      m.memory_bytes = mem / 16;
      system = std::make_unique<MongoCsSystem>(&testbed, m);
    } else {
      MongoAsSystem::Options m;
      m.mongod.memory_bytes = mem / 16;
      auto sys = std::make_unique<MongoAsSystem>(&testbed, m);
      sys->config().PreSplit(opt.record_count * 2, 1024);
      system = std::move(sys);
    }
    YcsbDriver driver(&testbed, system.get(), WorkloadSpec::C(), opt);
    return driver.SimulateTimedLoad(128);
  };
  SimTime sql = load_time(SystemKind::kSqlCs);
  SimTime mongo_cs = load_time(SystemKind::kMongoCs);
  EXPECT_GT(sql, mongo_cs);
}

}  // namespace
}  // namespace elephant::ycsb
