// Property tests for the log-linear latency histogram against an exact
// sorted-vector oracle: percentiles are monotone in p, every reported
// quantile sits within one bucket (~12.5% relative width) above the
// exact order statistic, Merge is equivalent to recording the union,
// and Reset round-trips. The sweep harness leans on all of these —
// especially p99.9 resolution at the 512-bucket tail.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/histogram.h"
#include "common/rng.h"

namespace elephant {
namespace {

// The k-th smallest with k chosen by the histogram's own rule (the
// smallest k with k >= p/100 * n, computed in the same double
// arithmetic so ties break identically).
int64_t ExactPercentile(const std::vector<int64_t>& sorted, double p) {
  double target = p / 100.0 * static_cast<double>(sorted.size());
  auto k = static_cast<size_t>(std::ceil(target));
  if (k < 1) k = 1;
  if (k > sorted.size()) k = sorted.size();
  return sorted[k - 1];
}

// The documented accuracy contract: the histogram reports the upper
// bound of the bucket holding the exact order statistic (clamped to the
// recorded max), and log-linear buckets are at most value/8 + 1 wide.
void ExpectWithinOneBucket(int64_t reported, int64_t exact, double p) {
  EXPECT_GE(reported, exact) << "p=" << p;
  EXPECT_LE(reported - exact, exact / 8 + 1) << "p=" << p;
}

std::vector<int64_t> LatencyLikeSample(uint64_t seed, int n) {
  // Lognormal-ish body with a heavy far tail: the shape a saturating
  // server produces (sub-ms medians, multi-second p99.9s).
  Rng rng(seed);
  std::vector<int64_t> values;
  values.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    double body = rng.Exponential(800.0);
    if (rng.Bernoulli(0.01)) body += rng.Exponential(200000.0);
    if (rng.Bernoulli(0.001)) body += rng.Exponential(5000000.0);
    values.push_back(static_cast<int64_t>(body));
  }
  return values;
}

TEST(HistogramPropertyTest, PercentileMonotoneInP) {
  std::vector<int64_t> values = LatencyLikeSample(0xBADC0FFEE, 20000);
  Histogram h;
  for (int64_t v : values) h.Record(v);
  int64_t prev = h.Percentile(0);
  for (double p = 0.5; p <= 100.0; p += 0.5) {
    int64_t cur = h.Percentile(p);
    EXPECT_GE(cur, prev) << "p=" << p;
    prev = cur;
  }
  EXPECT_EQ(h.Percentile(100.0), h.max());
}

TEST(HistogramPropertyTest, BucketRelativeErrorAgainstSortedOracle) {
  for (uint64_t seed : {1ULL, 42ULL, 0xE1EFA47ULL}) {
    std::vector<int64_t> values = LatencyLikeSample(seed, 30000);
    Histogram h;
    for (int64_t v : values) h.Record(v);
    std::vector<int64_t> sorted = values;
    std::sort(sorted.begin(), sorted.end());
    for (double p : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 99.9,
                     99.99, 100.0}) {
      ExpectWithinOneBucket(h.Percentile(p), ExactPercentile(sorted, p), p);
    }
  }
}

TEST(HistogramPropertyTest, LinearRegionIsExact) {
  // Values below 64 get one bucket each: no quantization error at all.
  Histogram h;
  std::vector<int64_t> sorted;
  Rng rng(7);
  for (int i = 0; i < 5000; ++i) {
    auto v = static_cast<int64_t>(rng.Uniform(64));
    h.Record(v);
    sorted.push_back(v);
  }
  std::sort(sorted.begin(), sorted.end());
  for (double p = 1.0; p <= 100.0; p += 1.0) {
    EXPECT_EQ(h.Percentile(p), ExactPercentile(sorted, p)) << "p=" << p;
  }
}

TEST(HistogramPropertyTest, TailResolutionAtP999) {
  // 512 log-linear buckets must still resolve a far p99.9: a body of
  // fast ops with a 0.2% multi-second tail. The reported p99.9 lands in
  // the tail (not the body) and within one bucket of the exact value.
  Histogram h;
  std::vector<int64_t> sorted;
  Rng rng(0x5EED);
  for (int i = 0; i < 100000; ++i) {
    int64_t v = i % 500 == 0
                    ? 2000000 + static_cast<int64_t>(rng.Uniform(6000000))
                    : static_cast<int64_t>(rng.Uniform(3000));
    h.Record(v);
    sorted.push_back(v);
  }
  std::sort(sorted.begin(), sorted.end());
  int64_t exact = ExactPercentile(sorted, 99.9);
  ASSERT_GE(exact, 2000000) << "sample construction broke";
  ExpectWithinOneBucket(h.Percentile(99.9), exact, 99.9);
}

TEST(HistogramPropertyTest, SummaryQuantilesMatchIndividualWalks) {
  for (uint64_t seed : {3ULL, 0xFEEDULL}) {
    std::vector<int64_t> values = LatencyLikeSample(seed, 25000);
    Histogram h;
    for (int64_t v : values) h.Record(v);
    Histogram::Quantiles q = h.SummaryQuantiles();
    EXPECT_EQ(q.p50, h.Percentile(50.0));
    EXPECT_EQ(q.p95, h.Percentile(95.0));
    EXPECT_EQ(q.p99, h.Percentile(99.0));
    EXPECT_EQ(q.p999, h.Percentile(99.9));
  }
  Histogram empty;
  Histogram::Quantiles q = empty.SummaryQuantiles();
  EXPECT_EQ(q.p50, 0);
  EXPECT_EQ(q.p999, 0);
}

void ExpectSameDistribution(const Histogram& a, const Histogram& b) {
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.min(), b.min());
  EXPECT_EQ(a.max(), b.max());
  EXPECT_DOUBLE_EQ(a.Mean(), b.Mean());
  EXPECT_DOUBLE_EQ(a.StdDev(), b.StdDev());
  for (double p = 0.0; p <= 100.0; p += 0.25) {
    EXPECT_EQ(a.Percentile(p), b.Percentile(p)) << "p=" << p;
  }
}

TEST(HistogramPropertyTest, MergeEquivalentToRecordingUnion) {
  std::vector<int64_t> first = LatencyLikeSample(11, 8000);
  std::vector<int64_t> second = LatencyLikeSample(22, 12000);
  Histogram a;
  Histogram b;
  Histogram unioned;
  for (int64_t v : first) {
    a.Record(v);
    unioned.Record(v);
  }
  for (int64_t v : second) {
    b.Record(v);
    unioned.Record(v);
  }
  a.Merge(b);
  ExpectSameDistribution(a, unioned);
}

TEST(HistogramPropertyTest, ResetRoundTrips) {
  std::vector<int64_t> values = LatencyLikeSample(33, 10000);
  Histogram reused;
  for (int64_t v : values) reused.Record(v + 17);  // different content
  reused.Reset();
  EXPECT_EQ(reused.count(), 0);
  EXPECT_EQ(reused.min(), 0);
  EXPECT_EQ(reused.max(), 0);
  Histogram fresh;
  for (int64_t v : values) {
    reused.Record(v);
    fresh.Record(v);
  }
  ExpectSameDistribution(reused, fresh);
}

}  // namespace
}  // namespace elephant
