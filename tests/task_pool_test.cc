#include "common/task_pool.h"

#include <gtest/gtest.h>

#include "common/thread_annotations.h"

#include <atomic>
#include <set>
#include <stdexcept>
#include <utility>
#include <vector>

namespace elephant {
namespace {

TEST(TaskPoolTest, ParallelForVisitsEveryIndexExactlyOnce) {
  TaskPool pool(4);
  constexpr size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(0, kN, 64, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(TaskPoolTest, ParallelForEmptyRangeRunsNothing) {
  TaskPool pool(2);
  std::atomic<int> calls{0};
  pool.ParallelFor(5, 5, 16, [&](size_t, size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(TaskPoolTest, MorselBoundariesIndependentOfThreadCount) {
  // The determinism contract: chunk boundaries depend only on
  // (begin, end, morsel), never on how many workers participate.
  auto boundaries = [](int threads) {
    TaskPool pool(threads);
    Mutex mu;
    std::set<std::pair<size_t, size_t>> seen;
    pool.ParallelFor(3, 1003, 37, [&](size_t lo, size_t hi) {
      MutexLock lock(&mu);
      seen.insert({lo, hi});
    });
    return seen;
  };
  std::set<std::pair<size_t, size_t>> serial = boundaries(1);
  EXPECT_EQ(boundaries(2), serial);
  EXPECT_EQ(boundaries(8), serial);
  // Every morsel starts at begin + k * morsel and they tile the range.
  size_t expect_lo = 3;
  for (const auto& [lo, hi] : serial) {
    EXPECT_EQ(lo, expect_lo);
    EXPECT_LE(hi, 1003u);
    expect_lo = hi;
  }
  EXPECT_EQ(expect_lo, 1003u);
}

TEST(TaskPoolTest, SubmitAndWaitIdleRunsEverything) {
  TaskPool pool(4);
  std::atomic<int> done{0};
  for (int i = 0; i < 500; ++i) {
    pool.Submit([&] { done.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(done.load(), 500);
}

TEST(TaskPoolTest, TasksMaySubmitMoreTasks) {
  TaskPool pool(3);
  std::atomic<int> done{0};
  for (int i = 0; i < 20; ++i) {
    pool.Submit([&pool, &done] {
      for (int j = 0; j < 10; ++j) {
        pool.Submit([&done] { done.fetch_add(1); });
      }
    });
  }
  pool.WaitIdle();
  EXPECT_EQ(done.load(), 200);
}

TEST(TaskPoolTest, NestedParallelForDoesNotDeadlock) {
  // A ParallelFor body issuing another ParallelFor on the same pool must
  // make progress even when every worker is busy: the waiting caller
  // drains queued tasks itself.
  TaskPool pool(4);
  constexpr size_t kOuter = 16;
  constexpr size_t kInner = 64;
  std::atomic<size_t> total{0};
  pool.ParallelFor(0, kOuter, 1, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      pool.ParallelFor(0, kInner, 8, [&](size_t ilo, size_t ihi) {
        total.fetch_add(ihi - ilo);
      });
    }
  });
  EXPECT_EQ(total.load(), kOuter * kInner);
}

TEST(TaskPoolTest, ParallelForRethrowsFirstBodyException) {
  TaskPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(0, 1000, 10,
                       [&](size_t lo, size_t) {
                         if (lo == 500) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
  // The pool stays usable after an exception.
  std::atomic<int> ok{0};
  pool.ParallelFor(0, 100, 10, [&](size_t lo, size_t hi) {
    ok.fetch_add(static_cast<int>(hi - lo));
  });
  EXPECT_EQ(ok.load(), 100);
}

TEST(TaskPoolTest, ParallelismOneRunsInline) {
  TaskPool pool(4);
  std::atomic<int> sum{0};
  pool.ParallelFor(
      0, 100, 7, [&](size_t lo, size_t hi) {
        sum.fetch_add(static_cast<int>(hi - lo));
      },
      /*parallelism=*/1);
  EXPECT_EQ(sum.load(), 100);
}

TEST(TaskPoolTest, StressInterleavedSubmitAndParallelFor) {
  TaskPool pool(4);
  std::atomic<size_t> work{0};
  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&work] { work.fetch_add(1); });
    }
    pool.ParallelFor(0, 200, 9, [&](size_t lo, size_t hi) {
      work.fetch_add(hi - lo);
    });
  }
  pool.WaitIdle();
  EXPECT_EQ(work.load(), 20u * (50 + 200));
}

TEST(TaskPoolTest, GlobalPoolGrowsButNeverShrinks) {
  int before = TaskPool::Global(2).num_threads();
  EXPECT_GE(before, 2);
  EXPECT_GE(TaskPool::Global(4).num_threads(), 4);
  EXPECT_GE(TaskPool::Global(1).num_threads(), 4);  // no shrink
}

TEST(TaskPoolTest, ThreadCountClampedToMaxWorkers) {
  TaskPool pool(TaskPool::kMaxWorkers + 10);
  EXPECT_EQ(pool.num_threads(), TaskPool::kMaxWorkers);
}

}  // namespace
}  // namespace elephant
