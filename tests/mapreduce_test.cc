#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "dfs/dfs.h"
#include "mapreduce/mapreduce.h"
#include "sim/simulation.h"

namespace elephant::mapreduce {
namespace {

class MrTest : public ::testing::Test {
 protected:
  MrTest()
      : cluster_(&sim_, 16, cluster::NodeConfig{}),
        fs_(&cluster_, dfs::DfsOptions{}),
        mr_(&cluster_, &fs_, MrConfig{}) {}

  sim::Simulation sim_;
  cluster::Cluster cluster_;
  dfs::DistributedFileSystem fs_;
  MrEngine mr_;
};

TEST_F(MrTest, PaperSlotCounts) {
  // §3.2.1: 8 map + 8 reduce tasks per node -> 128 + 128 slots.
  EXPECT_EQ(mr_.total_map_slots(), 128);
  EXPECT_EQ(mr_.total_reduce_slots(), 128);
}

TEST_F(MrTest, EmptyTaskCostsStartupOnly) {
  // Paper: map tasks over empty bucket files finish in ~6 seconds.
  MapTaskSpec empty{0, 0, 0};
  EXPECT_EQ(mr_.MapTaskTime(empty), mr_.config().task_startup);
}

TEST_F(MrTest, CpuBoundTaskTime) {
  // 200 MB uncompressed at 20 MB/s = 10 s + 6 s startup.
  MapTaskSpec task{20 * 1000 * 1000, 200 * 1000 * 1000, 0};
  EXPECT_NEAR(SimTimeToSeconds(mr_.MapTaskTime(task)), 16.0, 0.5);
}

TEST_F(MrTest, CpuRateOverride) {
  MapTaskSpec task{0, 200 * 1000 * 1000, 0};
  task.cpu_mbps = 40.0;
  EXPECT_NEAR(SimTimeToSeconds(mr_.MapTaskTime(task)), 11.0, 0.5);
}

TEST_F(MrTest, SingleWaveJob) {
  JobSpec job;
  job.name = "one_wave";
  for (int i = 0; i < 128; ++i) {
    job.map_tasks.push_back({0, 100 * 1000 * 1000, 0});  // 5 s each
  }
  JobStats stats = mr_.RunJob(job);
  EXPECT_EQ(stats.map_waves, 1);
  EXPECT_NEAR(SimTimeToSeconds(stats.map_phase), 11.0, 0.5);
}

TEST_F(MrTest, TwoWavesDoubleTheMakespan) {
  JobSpec job;
  for (int i = 0; i < 256; ++i) {
    job.map_tasks.push_back({0, 100 * 1000 * 1000, 0});
  }
  JobStats stats = mr_.RunJob(job);
  EXPECT_EQ(stats.map_waves, 2);
  EXPECT_NEAR(SimTimeToSeconds(stats.map_phase), 22.0, 1.0);
}

// The paper's Q1 anomaly: when long and short tasks interleave in the
// submission order, the greedy scheduler can give one slot two long
// tasks, stretching the makespan beyond the ideal.
TEST_F(MrTest, GreedySchedulingReproducesQ1Anomaly) {
  JobSpec job;
  // 512 tasks: 8 long (70 s) of every 32, rest ~0 s (empty bucket
  // pattern), long-task count = 128 = slot count.
  for (int i = 0; i < 512; ++i) {
    if (i % 32 < 8) {
      job.map_tasks.push_back({0, 1400 * 1000 * 1000, 0});  // 70 s + 6
    } else {
      job.map_tasks.push_back({0, 0, 0});  // 6 s startup only
    }
  }
  JobStats stats = mr_.RunJob(job);
  double makespan = SimTimeToSeconds(stats.map_phase);
  // Ideal: 76 + 3 * 6 = 94 s. Greedy mixes empty and non-empty in the
  // first wave, so some slot runs two 76 s tasks: makespan ~150 s.
  EXPECT_GT(makespan, 130.0);
  EXPECT_LT(makespan, 170.0);
}

TEST_F(MrTest, ShuffleOverlapsMapPhase) {
  JobSpec job;
  // Many waves of tasks, each emitting output: the shuffle drains while
  // maps still run, so shuffle_extra stays small.
  for (int i = 0; i < 1024; ++i) {
    job.map_tasks.push_back({0, 100 * 1000 * 1000, 10 * 1000 * 1000});
  }
  job.reduce.num_reducers = 128;
  job.reduce.shuffle_bytes = 1024LL * 10 * 1000 * 1000;
  JobStats stats = mr_.RunJob(job);
  EXPECT_LT(stats.shuffle_extra, stats.map_phase / 4);
}

TEST_F(MrTest, ReduceRoundsWhenReducersExceedSlots) {
  JobSpec job;
  job.map_tasks.push_back({0, 1000, 1000});
  job.reduce.num_reducers = 128;
  job.reduce.shuffle_bytes = 1000;
  job.reduce.output_bytes = 1000;
  JobStats one_round = mr_.RunJob(job);
  job.reduce.num_reducers = 256;
  JobStats two_rounds = mr_.RunJob(job);
  EXPECT_GT(two_rounds.reduce_phase, one_round.reduce_phase);
}

TEST_F(MrTest, FixedOverheadAddsToTotal) {
  JobSpec job;
  job.map_tasks.push_back({0, 0, 0});
  JobStats base = mr_.RunJob(job);
  job.fixed_overhead = 400 * kSecond;  // the map-join failure penalty
  JobStats with_overhead = mr_.RunJob(job);
  EXPECT_EQ(with_overhead.total - base.total, 400 * kSecond);
}

TEST_F(MrTest, MapOnlyJobHasNoReduceTime) {
  JobSpec job;
  job.map_tasks.push_back({0, 1000000, 0});
  JobStats stats = mr_.RunJob(job);
  EXPECT_EQ(stats.reduce_phase, 0);
  EXPECT_EQ(stats.shuffle_extra, 0);
}

}  // namespace
}  // namespace elephant::mapreduce
