// End-to-end integration test of the paper's §3.5 Discussion — the
// study's conclusions, asserted across both halves of the reproduction
// in one place.

#include <gtest/gtest.h>

#include "tpch/dss_benchmark.h"
#include "tpch/queries.h"
#include "ycsb/driver.h"

namespace elephant {
namespace {

class PaperFindingsTest : public ::testing::Test {
 protected:
  static tpch::DssBenchmark& Dss() {
    static tpch::DssBenchmark* bench = new tpch::DssBenchmark();
    return *bench;
  }

  static ycsb::DriverOptions OltpOptions(int64_t target) {
    ycsb::DriverOptions opt;
    opt.record_count = 800000;
    opt.warmup = 1500 * kMillisecond;
    opt.measure = 2 * kSecond;
    opt.target_throughput = target;
    return opt;
  }
};

// "The parallel database system (PDW) was approximately 9X faster than
// the MapReduce-based data warehouse (Hive) when running TPC-H at a
// 16TB scale, even when indexing was not used in PDW."
TEST_F(PaperFindingsTest, DssHeadline) {
  double speedup_sum = 0;
  int n = 0;
  for (int q = 1; q <= tpch::kNumQueries; ++q) {
    auto hive = Dss().RunHive(q, 16000);
    auto pdw = Dss().RunPdw(q, 16000);
    if (hive.failed_out_of_disk) continue;
    speedup_sum += static_cast<double>(hive.total) / pdw.total;
    n++;
  }
  EXPECT_NEAR(speedup_sum / n, 9.0, 4.0);
}

// "The robust and mature cost-based optimization ... allow it to
// produce and run more efficient plans": with the optimizer ablated,
// PDW's advantage shrinks dramatically.
TEST_F(PaperFindingsTest, OptimizerIsTheDifferentiator) {
  tpch::DssOptions naive;
  naive.pdw.cost_based_optimizer = false;
  tpch::DssBenchmark no_cbo(naive);
  double with = 0, without = 0;
  for (int q : {3, 5, 19, 21}) {
    double hive = SimTimeToSeconds(Dss().RunHive(q, 1000).total);
    with += hive / SimTimeToSeconds(Dss().RunPdw(q, 1000).total);
    without += hive / SimTimeToSeconds(no_cbo.RunPdw(q, 1000).total);
  }
  EXPECT_GT(with, 2 * without);
}

// "SQL-CS was able to achieve higher throughput than the MongoDB for
// the same number of clients, and it had lower latency across almost
// every single test ... even when the NoSQL system did not provide any
// form of durability."
TEST_F(PaperFindingsTest, OltpHeadline) {
  auto opt = OltpOptions(160000);
  auto sql = ycsb::RunOnePoint(ycsb::SystemKind::kSqlCs,
                               ycsb::WorkloadSpec::C(), 160000, opt);
  auto mongo = ycsb::RunOnePoint(ycsb::SystemKind::kMongoAs,
                                 ycsb::WorkloadSpec::C(), 160000, opt);
  EXPECT_GT(sql.achieved_ops_per_sec, mongo.achieved_ops_per_sec);
  EXPECT_LT(sql.MeanLatencyMs(ycsb::OpType::kRead),
            mongo.MeanLatencyMs(ycsb::OpType::kRead));
}

// "Hive scales well as the dataset size increases" while PDW grows
// nearly linearly: summed over queries, Hive's 250->4000 growth stays
// well under the 16x of perfect linearity.
TEST_F(PaperFindingsTest, HiveScalesSublinearly) {
  double hive_growth = 0, pdw_growth = 0;
  for (int q : {1, 2, 11, 16, 22}) {  // the paper's overhead-dominated set
    hive_growth += SimTimeToSeconds(Dss().RunHive(q, 4000).total) /
                   SimTimeToSeconds(Dss().RunHive(q, 250).total);
    pdw_growth += SimTimeToSeconds(Dss().RunPdw(q, 4000).total) /
                  SimTimeToSeconds(Dss().RunPdw(q, 250).total);
  }
  hive_growth /= 5;
  pdw_growth /= 5;
  EXPECT_LT(hive_growth, 8.0);         // far under 16x
  EXPECT_GT(pdw_growth, hive_growth);  // PDW closer to linear
}

// "The NoSQL systems tend to have more flexible data models [and]
// support for auto-sharding": the functionality trade-offs the paper
// lists in §2.4 exist in the models too.
TEST_F(PaperFindingsTest, FunctionalityTradeoffsExist) {
  // Mongo-AS auto-shards with range partitioning and a balancer.
  ycsb::OltpTestbed testbed;
  ycsb::MongoAsSystem as(&testbed, {});
  ASSERT_TRUE(as.LoadDataset(64000, 1024).ok());
  EXPECT_GT(as.config().num_chunks(), 100u);
  // SQL-CS / Mongo-CS shard only via client-side hashing: no config
  // server, no balancer, no automatic failover — but SQL has the WAL.
  ycsb::OltpTestbed testbed2;
  sqlkv::SqlEngineOptions sql_opt;
  ycsb::SqlCsSystem sql(&testbed2, sql_opt);
  ASSERT_TRUE(sql.LoadDataset(64000, 1024).ok());
  EXPECT_EQ(sql.engine(0).log().flushes(), 0);  // bulk load skips WAL
}

// The Table 3 "--" cell and the workload D crash: the two failure modes
// the paper reports, in one test.
TEST_F(PaperFindingsTest, TheTwoFailures) {
  EXPECT_TRUE(Dss().RunHive(9, 16000).failed_out_of_disk);
  auto opt = OltpOptions(40000);
  auto as = ycsb::RunOnePoint(ycsb::SystemKind::kMongoAs,
                              ycsb::WorkloadSpec::D(), 40000, opt);
  EXPECT_TRUE(as.crashed);
}

}  // namespace
}  // namespace elephant
