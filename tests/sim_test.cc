#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "cluster/cluster.h"
#include "common/units.h"
#include "sim/event_heap.h"
#include "sim/fault.h"
#include "sim/inline_callback.h"
#include "sim/resources.h"
#include "sim/simulation.h"

namespace elephant::sim {
namespace {

TEST(SimulationTest, CallbacksRunInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.ScheduleCall(30, [&] { order.push_back(3); });
  sim.ScheduleCall(10, [&] { order.push_back(1); });
  sim.ScheduleCall(20, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
}

TEST(SimulationTest, TiesBreakByInsertionOrder) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.ScheduleCall(10, [&order, i] { order.push_back(i); });
  }
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulationTest, RunUntilStopsClock) {
  Simulation sim;
  int fired = 0;
  sim.ScheduleCall(10, [&] { fired++; });
  sim.ScheduleCall(100, [&] { fired++; });
  sim.Run(/*until=*/50);
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(sim.Idle());
  sim.Run();
  EXPECT_EQ(fired, 2);
}

Task DelayTwice(Simulation* sim, std::vector<SimTime>* times) {
  co_await sim->Delay(5);
  times->push_back(sim->now());
  co_await sim->Delay(7);
  times->push_back(sim->now());
}

TEST(SimulationTest, CoroutineDelays) {
  Simulation sim;
  std::vector<SimTime> times;
  DelayTwice(&sim, &times);
  sim.Run();
  EXPECT_EQ(times, (std::vector<SimTime>{5, 12}));
}

Task UseServer(Simulation* sim, Server* server, SimTime service,
               std::vector<SimTime>* done) {
  (void)sim;
  co_await server->Acquire(service);
  done->push_back(sim->now());
}

TEST(ServerTest, SingleServerQueuesFcfs) {
  Simulation sim;
  Server server(&sim, 1);
  std::vector<SimTime> done;
  UseServer(&sim, &server, 10, &done);
  UseServer(&sim, &server, 10, &done);
  UseServer(&sim, &server, 10, &done);
  sim.Run();
  EXPECT_EQ(done, (std::vector<SimTime>{10, 20, 30}));
  EXPECT_EQ(server.requests(), 3);
  EXPECT_EQ(server.busy_time(), 30);
  EXPECT_EQ(server.wait_time(), 0 + 10 + 20);
}

TEST(ServerTest, MultiServerRunsInParallel) {
  Simulation sim;
  Server server(&sim, 2);
  std::vector<SimTime> done;
  for (int i = 0; i < 4; ++i) UseServer(&sim, &server, 10, &done);
  sim.Run();
  // Two at a time: completions at 10,10,20,20.
  EXPECT_EQ(done, (std::vector<SimTime>{10, 10, 20, 20}));
}

TEST(ServerTest, UtilizationTracksBusyFraction) {
  Simulation sim;
  Server server(&sim, 1);
  std::vector<SimTime> done;
  UseServer(&sim, &server, 50, &done);
  sim.ScheduleCall(100, [] {});  // extend the clock to 100
  sim.Run();
  EXPECT_DOUBLE_EQ(server.Utilization(), 0.5);
}

TEST(ServerTest, StallDelaysButNeverReordersCompletions) {
  Simulation sim;
  Server server(&sim, 1);
  std::vector<SimTime> done;
  server.StallUntil(25);
  UseServer(&sim, &server, 10, &done);
  UseServer(&sim, &server, 10, &done);
  UseServer(&sim, &server, 10, &done);
  sim.Run();
  // Every admission shifts past the stall deadline; FCFS order intact.
  EXPECT_EQ(done, (std::vector<SimTime>{35, 45, 55}));
  EXPECT_EQ(server.stalled_until(), 25);
}

Task UseServerChecked(Simulation* sim, Server* server, SimTime service,
                      std::vector<std::pair<SimTime, bool>>* done) {
  Status s = co_await server->AcquireChecked(service);
  done->emplace_back(sim->now(), s.ok());
}

TEST(ServerTest, CheckedAcquirePropagatesInjectedErrors) {
  Simulation sim;
  Server server(&sim, 1);
  server.InjectTransientErrors(2);
  std::vector<std::pair<SimTime, bool>> done;
  UseServerChecked(&sim, &server, 10, &done);
  UseServerChecked(&sim, &server, 10, &done);
  UseServerChecked(&sim, &server, 10, &done);
  sim.Run();
  ASSERT_EQ(done.size(), 3u);
  // The armed budget fails the first two I/Os as a Status, not an
  // abort; a failed I/O still occupies the device full service time.
  EXPECT_EQ(done[0], (std::pair<SimTime, bool>{10, false}));
  EXPECT_EQ(done[1], (std::pair<SimTime, bool>{20, false}));
  EXPECT_EQ(done[2], (std::pair<SimTime, bool>{30, true}));
  EXPECT_EQ(server.errors_delivered(), 2);
  EXPECT_EQ(server.error_budget(), 0);
}

TEST(ServerTest, PlainAcquireIgnoresErrorBudget) {
  Simulation sim;
  Server server(&sim, 1);
  server.InjectTransientErrors(1);
  std::vector<SimTime> done;
  UseServer(&sim, &server, 10, &done);
  sim.Run();
  EXPECT_EQ(done, (std::vector<SimTime>{10}));
  EXPECT_EQ(server.errors_delivered(), 0);
  EXPECT_EQ(server.error_budget(), 1);  // unconsumed by unchecked path
}

TEST(FaultPlanTest, FromSeedIsAPureFunction) {
  FaultPlanOptions opt;
  FaultPlan a = FaultPlan::FromSeed(0xDEADBEEF, opt);
  FaultPlan b = FaultPlan::FromSeed(0xDEADBEEF, opt);
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());
  EXPECT_FALSE(a.empty());
  bool diverged = false;
  for (uint64_t seed = 1; seed <= 8 && !diverged; ++seed) {
    diverged =
        FaultPlan::FromSeed(seed, opt).Fingerprint() != a.Fingerprint();
  }
  EXPECT_TRUE(diverged);
  // With every fault class disabled the plan is empty.
  FaultPlanOptions none;
  none.disk_stalls = none.disk_errors = none.nic_outages = false;
  none.partitions = none.crashes = false;
  EXPECT_TRUE(FaultPlan::FromSeed(0xDEADBEEF, none).empty());
}

TEST(FaultPlanTest, EventsRespectBoundsAndOrdering) {
  FaultPlanOptions opt;
  opt.horizon_start = 100 * kMillisecond;
  opt.horizon = 900 * kMillisecond;
  for (uint64_t seed = 0; seed < 32; ++seed) {
    FaultPlan plan = FaultPlan::FromSeed(seed, opt);
    SimTime prev = 0;
    for (const FaultEvent& ev : plan.events) {
      EXPECT_GE(ev.at, opt.horizon_start);
      EXPECT_LE(ev.at, opt.horizon);
      EXPECT_GE(ev.at, prev);  // sorted, stable on ties
      prev = ev.at;
      EXPECT_GE(ev.node, 0);
      EXPECT_LT(ev.node, ev.kind == FaultKind::kNodeCrash
                             ? opt.num_server_nodes
                             : opt.num_nodes);
      if (ev.kind == FaultKind::kPartition) {
        EXPECT_NE(ev.peer, ev.node);
        EXPECT_GE(ev.peer, 0);
        EXPECT_LT(ev.peer, opt.num_nodes);
      }
    }
  }
}

TEST(FaultInjectorTest, PartitionAndOutageWindowsExpire) {
  Simulation sim;
  FaultPlan plan;
  FaultEvent part;
  part.kind = FaultKind::kPartition;
  part.at = 100;
  part.duration = 50;
  part.node = 1;
  part.peer = 2;
  FaultEvent outage;
  outage.kind = FaultKind::kNicOutage;
  outage.at = 200;
  outage.duration = 50;
  outage.node = 3;
  plan.events = {part, outage};
  FaultInjector injector(&sim, std::vector<NodeFaultSurface>(4), plan);
  injector.Arm();
  FaultInjector* inj = &injector;
  sim.ScheduleCall(120, [inj] {
    EXPECT_TRUE(inj->MessageBlocked(1, 2));
    EXPECT_TRUE(inj->MessageBlocked(2, 1));  // symmetric
    EXPECT_FALSE(inj->MessageBlocked(0, 3));
  });
  sim.ScheduleCall(160, [inj] {
    EXPECT_FALSE(inj->MessageBlocked(1, 2));  // partition expired
  });
  sim.ScheduleCall(220, [inj] {
    EXPECT_TRUE(inj->MessageBlocked(0, 3));  // outage on either endpoint
    EXPECT_TRUE(inj->MessageBlocked(3, 0));
    EXPECT_FALSE(inj->MessageBlocked(1, 2));
  });
  sim.ScheduleCall(260, [inj] { EXPECT_FALSE(inj->MessageBlocked(0, 3)); });
  sim.Run();
  EXPECT_EQ(injector.injected(), 2);
  EXPECT_EQ(injector.crashes_applied(), 0);
}

TEST(FaultInjectorTest, OverlappingCrashWindowsCollapse) {
  Simulation sim;
  FaultPlan plan;
  FaultEvent first;
  first.kind = FaultKind::kNodeCrash;
  first.at = 100;
  first.duration = 200;  // restart at 300
  first.node = 0;
  FaultEvent second = first;
  second.at = 150;  // node already down: skipped, restart included
  second.duration = 500;
  plan.events = {first, second};
  std::vector<std::pair<SimTime, int>> crash_calls, restart_calls;
  FaultInjector::Hooks hooks;
  hooks.crash_node = [&](int node) {
    crash_calls.emplace_back(sim.now(), node);
  };
  hooks.restart_node = [&](int node) {
    restart_calls.emplace_back(sim.now(), node);
  };
  FaultInjector injector(&sim, std::vector<NodeFaultSurface>(1), plan,
                         hooks);
  injector.Arm();
  FaultInjector* inj = &injector;
  sim.ScheduleCall(250, [inj] { EXPECT_TRUE(inj->NodeCrashed(0)); });
  sim.ScheduleCall(350, [inj] { EXPECT_FALSE(inj->NodeCrashed(0)); });
  sim.Run();
  ASSERT_EQ(crash_calls.size(), 1u);
  EXPECT_EQ(crash_calls[0], (std::pair<SimTime, int>{100, 0}));
  ASSERT_EQ(restart_calls.size(), 1u);
  EXPECT_EQ(restart_calls[0], (std::pair<SimTime, int>{300, 0}));
  EXPECT_EQ(injector.crashes_applied(), 1);
  EXPECT_EQ(injector.restarts_applied(), 1);
  EXPECT_EQ(injector.injected(), 1);  // the collapsed crash never applied
}

TEST(DiskTest, SequentialVsRandomService) {
  Simulation sim;
  Disk::Config cfg;
  cfg.seq_mbps = 100.0;
  cfg.position_time = 8 * kMillisecond;
  Disk disk(&sim, cfg);
  // 1 MB sequential = 10 ms at 100 MB/s (decimal MB here: 1e6 bytes).
  EXPECT_EQ(disk.ServiceTime(1000000, true), 10 * kMillisecond);
  EXPECT_EQ(disk.ServiceTime(1000000, false), 18 * kMillisecond);
  // An 8 KB random read is dominated by positioning.
  SimTime t = disk.ServiceTime(8192, false);
  EXPECT_GT(t, 8 * kMillisecond);
  EXPECT_LT(t, 9 * kMillisecond);
}

TEST(LinkTest, GigabitTransferTime) {
  Simulation sim;
  Link::Config cfg;
  cfg.gbps = 1.0;
  cfg.per_message_latency = 100;
  Link link(&sim, cfg);
  // 125 MB at 1 Gb/s = 1 second.
  EXPECT_EQ(link.TransferTime(125000000), kSecond + 100);
}

Task Reader(Simulation* sim, RwLock* lock, SimTime hold,
            std::vector<std::pair<char, SimTime>>* log) {
  co_await lock->AcquireShared();
  log->push_back({'r', sim->now()});
  co_await sim->Delay(hold);
  lock->Release(false);
}

Task Writer(Simulation* sim, RwLock* lock, SimTime hold,
            std::vector<std::pair<char, SimTime>>* log) {
  co_await lock->AcquireExclusive();
  log->push_back({'w', sim->now()});
  co_await sim->Delay(hold);
  lock->Release(true);
}

TEST(RwLockTest, ReadersShareWritersExclude) {
  Simulation sim;
  RwLock lock(&sim);
  std::vector<std::pair<char, SimTime>> log;
  Reader(&sim, &lock, 10, &log);
  Reader(&sim, &lock, 10, &log);  // concurrent with first
  Writer(&sim, &lock, 5, &log);   // waits for both readers
  Reader(&sim, &lock, 10, &log);  // must wait behind the writer (FIFO)
  sim.Run();
  ASSERT_EQ(log.size(), 4u);
  EXPECT_EQ(log[0], std::make_pair('r', SimTime{0}));
  EXPECT_EQ(log[1], std::make_pair('r', SimTime{0}));
  EXPECT_EQ(log[2], std::make_pair('w', SimTime{10}));
  EXPECT_EQ(log[3], std::make_pair('r', SimTime{15}));
  EXPECT_EQ(lock.writer_held_time(), 5);
}

TEST(RwLockTest, WriterBlocksAllReaders) {
  Simulation sim;
  RwLock lock(&sim);
  std::vector<std::pair<char, SimTime>> log;
  Writer(&sim, &lock, 100, &log);
  for (int i = 0; i < 3; ++i) Reader(&sim, &lock, 1, &log);
  sim.Run();
  // All readers start only after the writer releases at t=100.
  for (size_t i = 1; i < log.size(); ++i) {
    EXPECT_EQ(log[i].second, 100);
  }
}

TEST(OneShotEventTest, WakesAllWaiters) {
  Simulation sim;
  OneShotEvent ev(&sim);
  int woke = 0;
  auto waiter = [](Simulation* s, OneShotEvent* e, int* count) -> Task {
    (void)s;
    co_await e->Wait();
    (*count)++;
  };
  waiter(&sim, &ev, &woke);
  waiter(&sim, &ev, &woke);
  sim.ScheduleCall(50, [&] { ev.Fire(); });
  sim.Run();
  EXPECT_EQ(woke, 2);
  EXPECT_EQ(sim.now(), 50);
}

TEST(LatchTest, JoinsFanOut) {
  Simulation sim;
  Latch latch(&sim, 3);
  SimTime joined = -1;
  auto joiner = [](Simulation* s, Latch* l, SimTime* t) -> Task {
    co_await l->Wait();
    *t = s->now();
  };
  joiner(&sim, &latch, &joined);
  sim.ScheduleCall(10, [&] { latch.CountDown(); });
  sim.ScheduleCall(20, [&] { latch.CountDown(); });
  sim.ScheduleCall(30, [&] { latch.CountDown(); });
  sim.Run();
  EXPECT_EQ(joined, 30);
}

// --- event heap ----------------------------------------------------

TEST(FourAryMinHeapTest, DrainsInSortedOrder) {
  FourAryMinHeap<int> heap;
  std::vector<int> values;
  uint64_t state = 12345;
  for (int i = 0; i < 1000; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    values.push_back(static_cast<int>(state >> 40));
  }
  for (int v : values) heap.Push(v);
  std::vector<int> drained;
  while (!heap.empty()) drained.push_back(heap.Pop());
  std::vector<int> expected = values;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(drained, expected);
}

TEST(FourAryMinHeapTest, InterleavedPushPopTracksMinimum) {
  FourAryMinHeap<int> heap;
  // Replace-top churn (the DES steady state): pop the min, push a new
  // element slightly above it, repeatedly.
  for (int i = 0; i < 8; ++i) heap.Push(i * 3);
  int last = -1;
  for (int round = 0; round < 500; ++round) {
    int top = heap.Pop();
    EXPECT_GE(top, last);
    last = top;
    heap.Push(top + 1 + (round % 5));
  }
  EXPECT_EQ(heap.size(), 8u);
}

TEST(TimedQueueTest, SameTimeEntriesPopInPushOrder) {
  TimedQueue<int> q;
  // Interleave pushes at two times and drain in between; the seq
  // tie-break lives inside the queue, so FIFO order among equal times
  // must hold no matter how pushes and pops interleave.
  q.Push(10, 0);
  q.Push(10, 1);
  q.Push(5, 100);
  EXPECT_EQ(q.Pop().value, 100);
  q.Push(10, 2);
  q.Push(10, 3);
  std::vector<int> order;
  while (!q.empty()) order.push_back(q.Pop().value);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(q.pushes(), 5u);
}

TEST(SimulationTest, TiesBreakByScheduleOrderUnderInterleaving) {
  // Same-time events scheduled from inside other events (the common
  // pattern: a resume at `now` scheduled while processing an event at
  // `now`) still fire in schedule order.
  Simulation sim;
  std::vector<int> order;
  sim.ScheduleCall(10, [&] {
    order.push_back(0);
    sim.ScheduleCall(0, [&] { order.push_back(2); });
    sim.ScheduleCall(0, [&] { order.push_back(3); });
  });
  sim.ScheduleCall(10, [&] { order.push_back(1); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

// --- InlineCallback ------------------------------------------------

TEST(InlineCallbackTest, SmallTrivialCallableRunsInline) {
  int hits = 0;
  int* p = &hits;
  InlineCallback cb([p] { (*p)++; });
  ASSERT_TRUE(static_cast<bool>(cb));
  cb();
  cb();
  EXPECT_EQ(hits, 2);
}

TEST(InlineCallbackTest, OversizedCallableIsBoxed) {
  // 64 bytes of captured state exceeds kInlineBytes; the callable is
  // heap-boxed but must behave identically.
  struct Big {
    int64_t pad[8];
  };
  Big big{{1, 2, 3, 4, 5, 6, 7, 8}};
  int64_t sum = 0;
  InlineCallback cb([big, &sum] {
    for (int64_t v : big.pad) sum += v;
  });
  static_assert(sizeof(Big) + sizeof(void*) > InlineCallback::kInlineBytes);
  cb();
  EXPECT_EQ(sum, 36);
}

TEST(InlineCallbackTest, NonTriviallyCopyableCallableIsBoxed) {
  auto counter = std::make_shared<int>(0);
  {
    InlineCallback cb([counter] { (*counter)++; });
    EXPECT_EQ(counter.use_count(), 2);  // boxed copy holds one reference
    cb();
  }
  // Destroying the callback released the boxed callable.
  EXPECT_EQ(counter.use_count(), 1);
  EXPECT_EQ(*counter, 1);
}

TEST(InlineCallbackTest, MoveTransfersAndEmptiesSource) {
  int hits = 0;
  int* p = &hits;
  InlineCallback a([p] { (*p)++; });
  InlineCallback b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(hits, 1);
  InlineCallback c;
  c = std::move(b);
  EXPECT_FALSE(static_cast<bool>(b));
  c();
  EXPECT_EQ(hits, 2);
}

// --- pooled per-op primitives --------------------------------------

Task PooledOp(Simulation* sim, Server* server, int64_t* completed) {
  PooledLatch done(&sim->latch_pool(), 1);
  auto leg = [](Server* s, Latch* l) -> Task {
    co_await s->Acquire(3);
    l->CountDown();
  };
  leg(server, done.get());
  co_await done->Wait();
  (*completed)++;
}

Task PooledIssuer(Simulation* sim, Server* server, int64_t ops,
                  int64_t* completed) {
  for (int64_t i = 0; i < ops; ++i) {
    co_await sim->Delay(2);
    PooledOp(sim, server, completed);
  }
}

TEST(WaitablePoolTest, ReusesLatchesAcrossOperations) {
  Simulation sim;
  Server server(&sim, 2, "dev");
  int64_t completed = 0;
  PooledIssuer(&sim, &server, 100, &completed);
  sim.Run();
  sim.CheckQuiescent();
  EXPECT_EQ(completed, 100);
  // Sequential ops share one pooled latch (plus the issuer's overlap):
  // the pool stays tiny instead of growing per op.
  EXPECT_LE(sim.latch_pool().created(), 4u);
  EXPECT_EQ(sim.latch_pool().idle(), sim.latch_pool().created());
}

TEST(WaitablePoolTest, MillionEventStressThroughPooledLatches) {
  // Two identical runs must produce bit-identical event counts and
  // clocks: slab reuse and latch pooling may not perturb the schedule.
  auto run = [] {
    Simulation sim;
    Server server(&sim, 4, "dev");
    int64_t completed = 0;
    for (int i = 0; i < 64; ++i) {
      PooledIssuer(&sim, &server, 6000, &completed);
    }
    sim.Run();
    sim.CheckQuiescent();
    EXPECT_EQ(completed, 64 * 6000);
    return std::make_pair(sim.events_processed(), sim.now());
  };
  auto first = run();
  auto second = run();
  EXPECT_GT(first.first, 1000000u);
  EXPECT_EQ(first, second);
}

TEST(WaitablePoolTest, OneShotPoolFiresAndResets) {
  Simulation sim;
  SimTime woke = -1;
  auto waiter = [](Simulation* s, SimTime* t) -> Task {
    PooledOneShot ev(&s->one_shot_pool());
    auto firer = [](Simulation* s2, OneShotEvent* e) -> Task {
      co_await s2->Delay(25);
      e->Fire();
    };
    firer(s, ev.get());
    co_await ev->Wait();
    *t = s->now();
  };
  waiter(&sim, &woke);
  sim.Run();
  sim.CheckQuiescent();
  EXPECT_EQ(woke, 25);
  // A second operation reuses the same (reset) event.
  SimTime woke2 = -1;
  waiter(&sim, &woke2);
  sim.Run();
  EXPECT_EQ(woke2, 50);
  EXPECT_EQ(sim.one_shot_pool().created(), 1u);
}

TEST(SimulationTest, TeardownMidRunDestroysScheduledFrames) {
  // Ending a simulation with events still queued (bounded Run) must
  // free suspended frames and pooled waiters without touching freed
  // memory — the ASan job exercises this path.
  Simulation sim;
  Server server(&sim, 1, "dev");
  int64_t completed = 0;
  PooledIssuer(&sim, &server, 50, &completed);
  sim.Run(/*until=*/20);
  EXPECT_LT(completed, 50);
  // ~Simulation drains the queue and destroys parked frames here.
}

}  // namespace
}  // namespace elephant::sim

namespace elephant::cluster {
namespace {

TEST(DiskGroupTest, AggregateBandwidth) {
  sim::Simulation sim;
  sim::Disk::Config cfg;
  cfg.seq_mbps = 100.0;
  DiskGroup group(&sim, cfg, 8, "g");
  EXPECT_DOUBLE_EQ(group.AggregateSeqBytesPerSec(), 800e6);
  // The paper: 8 disks deliver ~800 MB/s aggregate sequential I/O.
}

TEST(DiskGroupTest, EightConcurrentRandomReads) {
  sim::Simulation sim;
  sim::Disk::Config cfg;
  cfg.seq_mbps = 100.0;
  cfg.position_time = 8 * kMillisecond;
  DiskGroup group(&sim, cfg, 8, "g");
  std::vector<SimTime> done;
  auto reader = [](sim::Simulation* s, DiskGroup* g,
                   std::vector<SimTime>* d) -> sim::Task {
    co_await g->RandomRead(8192);
    d->push_back(s->now());
  };
  for (int i = 0; i < 16; ++i) reader(&sim, &group, &done);
  sim.Run();
  ASSERT_EQ(done.size(), 16u);
  // First 8 finish together, second 8 one service-time later.
  EXPECT_EQ(done[0], done[7]);
  EXPECT_GT(done[8], done[7]);
  EXPECT_EQ(done[15], 2 * done[7]);
}

TEST(ClusterTest, PaperTestbedDefaults) {
  sim::Simulation sim;
  NodeConfig cfg;
  Cluster cluster(&sim, 16, cfg);
  EXPECT_EQ(cluster.num_nodes(), 16);
  EXPECT_EQ(cluster.node(0).config().hardware_threads, 16);
  EXPECT_EQ(cluster.node(0).memory_bytes(), 32LL * kGB);
  EXPECT_EQ(cluster.node(15).id(), 15);
}

TEST(ClusterTest, ShuffleTimeScalesWithData) {
  sim::Simulation sim;
  NodeConfig cfg;
  Cluster cluster(&sim, 16, cfg);
  // 16 GB shuffled over 16 nodes at 1 Gb/s: each node sends 1 GB, 15/16
  // of it remote -> 0.9375 GB * 8 / 1e9 ~ 7.7 s.
  SimTime t = cluster.ShuffleTime(16LL * 1000000000, 16);
  EXPECT_NEAR(SimTimeToSeconds(t), 7.5, 0.3);
  // Doubling data doubles the time.
  EXPECT_EQ(cluster.ShuffleTime(32LL * 1000000000, 16), 2 * t);
}

TEST(ClusterTest, BroadcastSenderBound) {
  sim::Simulation sim;
  NodeConfig cfg;
  Cluster cluster(&sim, 16, cfg);
  // 1 GB to 15 receivers at 1 Gb/s = 120 seconds.
  SimTime t = cluster.BroadcastTime(1000000000, 16);
  EXPECT_NEAR(SimTimeToSeconds(t), 120.0, 0.1);
}

TEST(ClusterTest, TransferChargesBothNics) {
  sim::Simulation sim;
  NodeConfig cfg;
  Cluster cluster(&sim, 2, cfg);
  sim::Latch done(&sim, 1);
  cluster.Transfer(0, 1, 125000000, &done);  // 1 second of wire time
  sim.Run();
  EXPECT_GT(cluster.node(0).nic_tx().bytes_sent(), 0);
  EXPECT_GE(SimTimeToSeconds(sim.now()), 1.0);
}

}  // namespace
}  // namespace elephant::cluster
