#include <gtest/gtest.h>

#include "pdw/catalog.h"
#include "pdw/engine.h"
#include "tpch/dss_benchmark.h"

namespace elephant::pdw {
namespace {

using tpch::TableId;

TEST(PdwCatalogTest, Table1Layouts) {
  PdwCatalog cat;
  EXPECT_TRUE(cat.layout(TableId::kNation).replicated);
  EXPECT_TRUE(cat.layout(TableId::kRegion).replicated);
  EXPECT_EQ(cat.layout(TableId::kLineitem).distribution_column,
            "l_orderkey");
  EXPECT_EQ(cat.layout(TableId::kCustomer).distribution_column,
            "c_custkey");
  EXPECT_EQ(cat.distributions_per_node(), 8);
}

TEST(PdwCatalogTest, CoLocatedJoins) {
  PdwCatalog cat;
  // lineitem ⋈ orders on orderkey: both distributed on it -> local.
  EXPECT_TRUE(cat.JoinIsLocal(TableId::kLineitem, "l_orderkey",
                              TableId::kOrders, "o_orderkey"));
  // customer ⋈ orders on custkey: orders distributed on orderkey -> not.
  EXPECT_FALSE(cat.JoinIsLocal(TableId::kCustomer, "c_custkey",
                               TableId::kOrders, "o_custkey"));
  // Any join with a replicated table is local.
  EXPECT_TRUE(cat.JoinIsLocal(TableId::kSupplier, "s_nationkey",
                              TableId::kNation, "n_nationkey"));
}

class PdwEngineTest : public ::testing::Test {
 protected:
  PdwEngineTest() : bench_() {}
  tpch::DssBenchmark bench_;
};

TEST_F(PdwEngineTest, CacheFractionShrinksWithScale) {
  PdwEngine& pdw = bench_.pdw();
  // §3.3.1: the scale factors were chosen so different portions of the
  // database fit in memory. 16 nodes x 24 GB buffer pool = 384 GB.
  EXPECT_DOUBLE_EQ(pdw.CacheFraction(250), 1.0);  // everything cached
  EXPECT_NEAR(pdw.CacheFraction(1000), 0.37, 0.05);
  EXPECT_NEAR(pdw.CacheFraction(4000), 0.093, 0.02);
  EXPECT_NEAR(pdw.CacheFraction(16000), 0.023, 0.01);
}

TEST_F(PdwEngineTest, EveryQueryBuildsPlan) {
  for (int q = 1; q <= 22; ++q) {
    auto plan = BuildPdwPlan(q, bench_.pdw().catalog(),
                             bench_.pdw().options());
    EXPECT_GE(plan.size(), 2u) << "Q" << q;
  }
}

TEST_F(PdwEngineTest, Q19ReplicatesFilteredPart) {
  // §3.3.4.1: "PDW first replicates the part table at all the nodes".
  auto plan = BuildPdwPlan(19, bench_.pdw().catalog(),
                           bench_.pdw().options());
  bool replicates = false;
  for (const auto& s : plan) {
    if (s.kind == StepKind::kReplicate) replicates = true;
    // Q19 never shuffles lineitem (that is Hive's mistake).
    if (s.kind == StepKind::kShuffle) {
      EXPECT_LT(s.gb_per_sf, 0.1) << s.label;
    }
  }
  EXPECT_TRUE(replicates);
}

TEST_F(PdwEngineTest, Q5ShufflesOrdersOnCustkey) {
  // §3.3.4.1: "PDW first shuffles the orders table on o_custkey".
  auto plan = BuildPdwPlan(5, bench_.pdw().catalog(),
                           bench_.pdw().options());
  ASSERT_GE(plan.size(), 2u);
  bool found = false;
  for (const auto& s : plan) {
    if (s.kind == StepKind::kShuffle &&
        s.label.find("custkey") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(PdwEngineTest, ScanIsCpuBoundWhenCached) {
  PdwEngine& pdw = bench_.pdw();
  PdwStep scan{"s", StepKind::kScan, 0.725, 0, 1.0, 0};
  // At SF 250 everything is cached: scan time is CPU time and far below
  // the disk time of 181 GB.
  SimTime t250 = pdw.StepTime(scan, 250);
  EXPECT_LT(SimTimeToSeconds(t250), 10.0);
  // At SF 16000 the same scan is disk-bound and much slower per byte.
  SimTime t16000 = pdw.StepTime(scan, 16000);
  EXPECT_GT(static_cast<double>(t16000) / t250, 64.0);
}

TEST_F(PdwEngineTest, GraceHashJoinSpillsAtScale) {
  PdwEngine& pdw = bench_.pdw();
  PdwStep join{"j", StepKind::kLocalJoin, 0.33, 6.5e6, 1.0, 0.115};
  // Build side: 0.115 GB/SF / 16 nodes. At SF 250 it fits; at 16 000 a
  // node's share (115 GB) exceeds the pool and the join pays 2x I/O.
  SimTime small = pdw.StepTime(join, 250);
  SimTime big = pdw.StepTime(join, 16000);
  EXPECT_GT(static_cast<double>(big) / small, 64.0 * 1.5);
}

TEST_F(PdwEngineTest, CostBasedBeatsScriptOrder) {
  // Ablation: disabling the cost-based optimizer (shuffle both sides of
  // every join, script order) slows every lineitem query down.
  PdwOptions naive;
  naive.cost_based_optimizer = false;
  tpch::DssOptions opt;
  opt.pdw = naive;
  tpch::DssBenchmark no_cbo(opt);
  for (int q : {3, 5, 19, 21}) {
    // (Q9 is excluded: even the cost-based plan must repartition
    // lineitem there, so the gap is not meaningful.)
    EXPECT_GT(no_cbo.RunPdw(q, 1000).total, bench_.RunPdw(q, 1000).total)
        << "Q" << q;
  }
}

TEST_F(PdwEngineTest, LoadIsLandingNodeBound) {
  // Table 2 shape: PDW loads ~2x slower than Hive at every SF because
  // dwloader funnels everything through the landing node's NIC.
  for (double sf : tpch::kPaperScaleFactors) {
    EXPECT_GT(bench_.PdwLoadTime(sf), bench_.HiveLoadTime(sf));
  }
  EXPECT_NEAR(SimTimeToSeconds(bench_.PdwLoadTime(250)) / 60.0, 79, 20);
}

}  // namespace
}  // namespace elephant::pdw
