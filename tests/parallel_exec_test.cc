// Property tests for the parallel operator paths: every parallel
// operator must produce a byte-identical Table to its serial twin
// (same rows, same order, same floating-point bits), and parallel
// dbgen must generate a bit-identical database at any thread count.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "exec/fused.h"
#include "exec/operators.h"
#include "exec/segcache.h"
#include "exec/spill.h"
#include "exec/table.h"
#include "exec/zonemap.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

namespace elephant::exec {
namespace {

// Restores the process-wide parallelism knobs after each test. The
// fused knob is restored to its ambient value (the TSan job re-runs
// this binary under ELEPHANT_FUSED=0 to sweep the oracle path).
class ParallelExecTest : public ::testing::Test {
 protected:
  void SetUp() override { fused_was_ = ExecFusedPath(); }
  void TearDown() override {
    SetExecThreads(0);
    SetExecMorselSize(2048);
    SetExecForceRowPath(false);
    SetExecFusedPath(fused_was_);
    SetZoneMapChunkRows(0);
  }

 private:
  bool fused_was_ = true;
};

// A small morsel size forces the parallel paths even on test-sized
// tables (operators go parallel when rows >= 2 * morsel).
constexpr size_t kTestMorsel = 64;

Table RandomTable(uint64_t seed, size_t rows) {
  Table t({{"k", ValueType::kInt},
           {"v", ValueType::kDouble},
           {"s", ValueType::kString}});
  Rng rng(seed);
  for (size_t i = 0; i < rows; ++i) {
    int64_t k = rng.UniformRange(1, 50);
    double v = rng.NextDouble() * 1000.0 - 500.0;
    std::string s = "s" + std::to_string(rng.UniformRange(1, 20));
    t.AddRow({Value{k}, Value{v}, Value{std::move(s)}});
  }
  return t;
}

void ExpectTablesIdentical(const Table& a, const Table& b,
                           const std::string& what) {
  ASSERT_EQ(a.num_cols(), b.num_cols()) << what;
  for (int c = 0; c < a.num_cols(); ++c) {
    EXPECT_EQ(a.columns()[c].name, b.columns()[c].name) << what;
    EXPECT_EQ(a.columns()[c].type, b.columns()[c].type) << what;
  }
  ASSERT_EQ(a.num_rows(), b.num_rows()) << what;
  for (size_t i = 0; i < a.num_rows(); ++i) {
    for (int c = 0; c < a.num_cols(); ++c) {
      // Variant equality: exact type and exact bits (doubles included).
      ASSERT_TRUE(a.rows()[i][c] == b.rows()[i][c])
          << what << " differs at row " << i << " col " << c;
    }
  }
}

// Runs `op` serially and at 2 and 8 threads and requires exact equality.
template <typename Op>
void ExpectParallelMatchesSerial(const Op& op, const std::string& what) {
  SetExecThreads(1);
  Table serial = op();
  for (int threads : {2, 8}) {
    SetExecThreads(threads);
    SetExecMorselSize(kTestMorsel);
    Table parallel = op();
    ExpectTablesIdentical(serial, parallel,
                          what + " @" + std::to_string(threads) + "t");
  }
}

TEST_F(ParallelExecTest, FilterMatchesSerial) {
  Table t = RandomTable(1, 3000);
  int k = t.ColIndex("k");
  ExpectParallelMatchesSerial(
      [&] {
        return Filter(t, [k](const Row& r) { return AsInt(r[k]) % 3 == 0; });
      },
      "Filter");
}

TEST_F(ParallelExecTest, ProjectMatchesSerial) {
  Table t = RandomTable(2, 3000);
  int v = t.ColIndex("v");
  ExpectParallelMatchesSerial(
      [&] {
        return Project(t, {{"v2", ValueType::kDouble,
                            [v](const Row& r) {
                              return Value{AsDouble(r[v]) * 1.1};
                            }},
                           {"s", ValueType::kString, Col(t, "s")}});
      },
      "Project");
}

TEST_F(ParallelExecTest, HashJoinMatchesSerial) {
  Table left = RandomTable(3, 2500);
  Table right = RandomTable(4, 1500);
  for (JoinType type : {JoinType::kInner, JoinType::kLeftOuter,
                        JoinType::kLeftSemi, JoinType::kLeftAnti}) {
    ExpectParallelMatchesSerial(
        [&] { return HashJoin(left, right, {0}, {0}, type); },
        "HashJoin type " + std::to_string(static_cast<int>(type)));
  }
}

TEST_F(ParallelExecTest, HashJoinMultiKeyMatchesSerial) {
  Table left = RandomTable(5, 2500);
  Table right = RandomTable(6, 2500);
  ExpectParallelMatchesSerial(
      [&] { return HashJoin(left, right, {0, 2}, {0, 2}); },
      "HashJoin multi-key");
}

TEST_F(ParallelExecTest, HashAggregateMatchesSerial) {
  Table t = RandomTable(7, 4000);
  ExpectParallelMatchesSerial(
      [&] {
        return HashAggregateOn(
            t, {"s"},
            {{AggKind::kSum, Col(t, "v"), "sum_v", ValueType::kDouble},
             {AggKind::kAvg, Col(t, "v"), "avg_v", ValueType::kDouble},
             {AggKind::kMin, Col(t, "k"), "min_k", ValueType::kInt},
             {AggKind::kMax, Col(t, "k"), "max_k", ValueType::kInt},
             {AggKind::kCount, nullptr, "cnt", ValueType::kInt},
             {AggKind::kCountDistinct, Col(t, "k"), "dk",
              ValueType::kInt}});
      },
      "HashAggregate");
}

TEST_F(ParallelExecTest, HashAggregateGroupOrderIsFirstSeen) {
  // Group emission order must equal serial first-occurrence order, not
  // hash order — pin it against a hand-computed table.
  Table t({{"g", ValueType::kString}, {"x", ValueType::kInt}});
  for (size_t i = 0; i < 600; ++i) {
    const char* g = i % 3 == 0 ? "c" : (i % 3 == 1 ? "a" : "b");
    t.AddRow({Value{std::string(g)}, Value{static_cast<int64_t>(i)}});
  }
  SetExecThreads(8);
  SetExecMorselSize(kTestMorsel);
  Table agg = HashAggregateOn(
      t, {"g"}, {{AggKind::kCount, nullptr, "n", ValueType::kInt}});
  ASSERT_EQ(agg.num_rows(), 3u);
  EXPECT_EQ(AsString(agg.rows()[0][0]), "c");
  EXPECT_EQ(AsString(agg.rows()[1][0]), "a");
  EXPECT_EQ(AsString(agg.rows()[2][0]), "b");
}

TEST_F(ParallelExecTest, SortByMatchesSerial) {
  Table t = RandomTable(8, 3000);
  // Sort by the low-cardinality key only: ties exercise stability.
  ExpectParallelMatchesSerial([&] { return SortBy(t, {{0, true}}); },
                              "SortBy stability");
  ExpectParallelMatchesSerial(
      [&] { return SortBy(t, {{2, true}, {1, false}}); }, "SortBy 2-key");
}

TEST_F(ParallelExecTest, DbgenBitIdenticalAcrossThreadCounts) {
  tpch::DbgenOptions base;
  base.threads = 1;
  tpch::TpchDatabase serial = tpch::GenerateDatabase(0.01, base);
  for (int threads : {2, 8}) {
    tpch::DbgenOptions opt;
    opt.threads = threads;
    tpch::TpchDatabase par = tpch::GenerateDatabase(0.01, opt);
    std::string tag = "@" + std::to_string(threads) + "t";
    ExpectTablesIdentical(serial.region, par.region, "region " + tag);
    ExpectTablesIdentical(serial.nation, par.nation, "nation " + tag);
    ExpectTablesIdentical(serial.supplier, par.supplier, "supplier " + tag);
    ExpectTablesIdentical(serial.part, par.part, "part " + tag);
    ExpectTablesIdentical(serial.partsupp, par.partsupp, "partsupp " + tag);
    ExpectTablesIdentical(serial.customer, par.customer, "customer " + tag);
    ExpectTablesIdentical(serial.orders, par.orders, "orders " + tag);
    ExpectTablesIdentical(serial.lineitem, par.lineitem, "lineitem " + tag);
  }
}

// Golden TableFingerprint of each TPC-H query answer at sf 0.01 with the
// default dbgen seed. These pin the answers bit-exactly: any change to
// the columnar kernels, the dictionary encoding, the query plans, or the
// parallel decomposition that perturbs a single bit of a single cell
// flips the corresponding fingerprint.
constexpr uint64_t kQueryGold[tpch::kNumQueries] = {
    0x06c756d861d28424ULL,  // Q1
    0x8503b0e1100361e3ULL,  // Q2
    0x668e41e144b0c355ULL,  // Q3
    0x7cb2f66b9f7daf5eULL,  // Q4
    0xd9b345f6674ae597ULL,  // Q5
    0x110386a8ec164705ULL,  // Q6
    0x559d391726100e77ULL,  // Q7
    0xc63f666fe61ca74dULL,  // Q8
    0x85fbc4a74e1b7cd6ULL,  // Q9
    0x371d3e981208bd30ULL,  // Q10
    0x36982b460826152fULL,  // Q11
    0xbc501f6bc4a58e4cULL,  // Q12
    0xb2340b672991c5b2ULL,  // Q13
    0xce3b5ecae1976a1fULL,  // Q14
    0x48d47d15c7a81a34ULL,  // Q15
    0x70ffaede9393d601ULL,  // Q16
    0xb362a1df8c63c3fcULL,  // Q17
    0xede7ac76fd296b53ULL,  // Q18
    0xa42c77f74ff7cadaULL,  // Q19
    0xc718635815426952ULL,  // Q20
    0x64a41e3f1e34a38bULL,  // Q21
    0x50e5b781f95e9170ULL,  // Q22
};

TEST_F(ParallelExecTest, QueryFingerprintsPinnedAt1And8Threads) {
  tpch::DbgenOptions opt;
  tpch::TpchDatabase db = tpch::GenerateDatabase(0.01, opt);
  for (int threads : {1, 8}) {
    SetExecThreads(threads);
    SetExecMorselSize(threads > 1 ? kTestMorsel : size_t{2048});
    for (int q = 1; q <= tpch::kNumQueries; ++q) {
      Table ans = tpch::RunQuery(q, db);
      EXPECT_EQ(TableFingerprint(ans), kQueryGold[q - 1])
          << "Q" << q << " answer drifted @" << threads << " thread(s)";
    }
  }
}

// Out-of-core sweep (DESIGN.md §15): every TPC-H answer must stay
// pinned to its golden fingerprint when the execution memory budget
// forces the pipeline breakers to spill — at roughly half and a tenth
// of the database's columnar working set, serial and at 8 threads.
TEST_F(ParallelExecTest, QueryFingerprintsPinnedUnderMemoryBudgets) {
  tpch::TpchDatabase db = tpch::GenerateDatabase(0.01);
  size_t working_set = 0;
  for (int id = 0; id < tpch::kNumTables; ++id) {
    working_set += TableByteSize(db.table(static_cast<tpch::TableId>(id)));
  }
  ASSERT_GT(working_set, 0u);
  size_t ambient = ExecMemoryBudget();
  ResetSpillCounters();
  for (size_t budget : {working_set / 2, working_set / 10}) {
    SetExecMemoryBudget(budget);
    for (int threads : {1, 8}) {
      SetExecThreads(threads);
      SetExecMorselSize(threads > 1 ? kTestMorsel : size_t{2048});
      for (int q = 1; q <= tpch::kNumQueries; ++q) {
        Table ans = tpch::RunQuery(q, db);
        EXPECT_EQ(TableFingerprint(ans), kQueryGold[q - 1])
            << "Q" << q << " answer drifted @" << threads
            << " thread(s), budget " << budget << " bytes";
      }
    }
  }
  // The sweep must actually have exercised the out-of-core paths.
  SpillCounters c = GetSpillCounters();
  EXPECT_GT(c.join_spills + c.agg_spills + c.sort_spills, 0u);
  EXPECT_EQ(c.fallbacks, 0u);
  EXPECT_EQ(SegmentCache::Global().GetStats().entries, 0u)
      << "spilled segments leaked across queries";
  SetExecMemoryBudget(ambient);
}

TEST_F(ParallelExecTest, RowPathMatchesColumnarUnderParallelism) {
  // The forced row path and the columnar fast path must agree even when
  // both run morsel-parallel.
  Table t = RandomTable(9, 4000);
  SetExecThreads(8);
  SetExecMorselSize(kTestMorsel);
  auto pipeline = [&] {
    Table f = Filter(t, [](const Row& r) { return AsInt(r[0]) % 2 == 0; });
    return HashAggregateOn(
        f, {"s"},
        {ColAgg(AggKind::kSum, f, "v", "sum_v", ValueType::kDouble),
         ColAgg(AggKind::kMin, f, "v", "min_v", ValueType::kDouble),
         CountAgg("n")});
  };
  Table columnar = pipeline();
  SetExecForceRowPath(true);
  Table row = pipeline();
  SetExecForceRowPath(false);
  ExpectTablesIdentical(columnar, row, "parallel columnar vs row path");
}

TEST_F(ParallelExecTest, FusedPipelineMatchesSerial) {
  Table t = RandomTable(10, 4000);
  SetZoneMapChunkRows(128);
  ScanSpec spec;
  spec.ranges.push_back(ColRange(t, "v", -350.0, 200.0));
  spec.codes.push_back(CodeMatch(
      t, "s", [](const std::string& s) { return s.size() == 2; }));
  ExpectParallelMatchesSerial([&] { return FusedFilter(t, spec); },
                              "FusedFilter");
  AggFactory aggs = [](const Table& in) {
    return std::vector<AggExpr>{
        ColAgg(AggKind::kSum, in, "v", "sum_v", ValueType::kDouble),
        ColAgg(AggKind::kCountDistinct, in, "k", "dk", ValueType::kInt),
        CountAgg("n")};
  };
  ExpectParallelMatchesSerial(
      [&] { return FusedAggregate(t, spec, {"s"}, aggs); }, "FusedAggregate");
}

TEST_F(ParallelExecTest, FusedMatchesOracleUnderParallelism) {
  // The fused path and the materializing oracle must agree bit-exactly
  // while both run morsel-parallel.
  Table t = RandomTable(11, 4000);
  SetZoneMapChunkRows(128);
  SetExecThreads(8);
  SetExecMorselSize(kTestMorsel);
  ScanSpec spec;
  spec.ranges.push_back(ColRange(t, "k", 5.0, 44.0));
  AggFactory aggs = [](const Table& in) {
    return std::vector<AggExpr>{
        ColAgg(AggKind::kSum, in, "v", "sum_v", ValueType::kDouble),
        CountAgg("n")};
  };
  SetExecFusedPath(true);
  Table filter_fused = FusedFilter(t, spec);
  Table agg_fused = FusedAggregate(t, spec, {"s"}, aggs);
  SetExecFusedPath(false);
  Table filter_oracle = FusedFilter(t, spec);
  Table agg_oracle = FusedAggregate(t, spec, {"s"}, aggs);
  ExpectTablesIdentical(filter_fused, filter_oracle,
                        "fused vs oracle filter @8t");
  ExpectTablesIdentical(agg_fused, agg_oracle, "fused vs oracle agg @8t");
}

TEST_F(ParallelExecTest, QueryFingerprintsPinnedOnOraclePath) {
  // The same 22 golds must hold with the fused knob off: the
  // materializing oracle path is a supported configuration, not a
  // vestige, and it must stay bit-identical at 1 and 8 threads.
  tpch::DbgenOptions opt;
  tpch::TpchDatabase db = tpch::GenerateDatabase(0.01, opt);
  SetExecFusedPath(false);
  for (int threads : {1, 8}) {
    SetExecThreads(threads);
    SetExecMorselSize(threads > 1 ? kTestMorsel : size_t{2048});
    for (int q = 1; q <= tpch::kNumQueries; ++q) {
      Table ans = tpch::RunQuery(q, db);
      EXPECT_EQ(TableFingerprint(ans), kQueryGold[q - 1])
          << "Q" << q << " oracle-path answer drifted @" << threads
          << " thread(s)";
    }
  }
}

TEST_F(ParallelExecTest, DbgenSeedStillMatters) {
  tpch::DbgenOptions a;
  a.threads = 4;
  tpch::DbgenOptions b = a;
  b.seed = a.seed + 1;
  tpch::TpchDatabase da = tpch::GenerateDatabase(0.01, a);
  tpch::TpchDatabase db = tpch::GenerateDatabase(0.01, b);
  ASSERT_EQ(da.lineitem.num_rows() > 0, true);
  bool any_diff = da.lineitem.num_rows() != db.lineitem.num_rows();
  size_t n = std::min(da.lineitem.num_rows(), db.lineitem.num_rows());
  for (size_t i = 0; i < n && !any_diff; ++i) {
    if (!(da.lineitem.rows()[i] == db.lineitem.rows()[i])) any_diff = true;
  }
  EXPECT_TRUE(any_diff) << "different seeds produced identical lineitem";
}

}  // namespace
}  // namespace elephant::exec
