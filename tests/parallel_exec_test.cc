// Property tests for the parallel operator paths: every parallel
// operator must produce a byte-identical Table to its serial twin
// (same rows, same order, same floating-point bits), and parallel
// dbgen must generate a bit-identical database at any thread count.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "exec/operators.h"
#include "exec/table.h"
#include "tpch/dbgen.h"

namespace elephant::exec {
namespace {

// Restores the process-wide parallelism knobs after each test.
class ParallelExecTest : public ::testing::Test {
 protected:
  void TearDown() override {
    SetExecThreads(0);
    SetExecMorselSize(2048);
  }
};

// A small morsel size forces the parallel paths even on test-sized
// tables (operators go parallel when rows >= 2 * morsel).
constexpr size_t kTestMorsel = 64;

Table RandomTable(uint64_t seed, size_t rows) {
  Table t({{"k", ValueType::kInt},
           {"v", ValueType::kDouble},
           {"s", ValueType::kString}});
  Rng rng(seed);
  for (size_t i = 0; i < rows; ++i) {
    int64_t k = rng.UniformRange(1, 50);
    double v = rng.NextDouble() * 1000.0 - 500.0;
    std::string s = "s" + std::to_string(rng.UniformRange(1, 20));
    t.AddRow({Value{k}, Value{v}, Value{std::move(s)}});
  }
  return t;
}

void ExpectTablesIdentical(const Table& a, const Table& b,
                           const std::string& what) {
  ASSERT_EQ(a.num_cols(), b.num_cols()) << what;
  for (int c = 0; c < a.num_cols(); ++c) {
    EXPECT_EQ(a.columns()[c].name, b.columns()[c].name) << what;
    EXPECT_EQ(a.columns()[c].type, b.columns()[c].type) << what;
  }
  ASSERT_EQ(a.num_rows(), b.num_rows()) << what;
  for (size_t i = 0; i < a.num_rows(); ++i) {
    for (int c = 0; c < a.num_cols(); ++c) {
      // Variant equality: exact type and exact bits (doubles included).
      ASSERT_TRUE(a.rows()[i][c] == b.rows()[i][c])
          << what << " differs at row " << i << " col " << c;
    }
  }
}

// Runs `op` serially and at 2 and 8 threads and requires exact equality.
template <typename Op>
void ExpectParallelMatchesSerial(const Op& op, const std::string& what) {
  SetExecThreads(1);
  Table serial = op();
  for (int threads : {2, 8}) {
    SetExecThreads(threads);
    SetExecMorselSize(kTestMorsel);
    Table parallel = op();
    ExpectTablesIdentical(serial, parallel,
                          what + " @" + std::to_string(threads) + "t");
  }
}

TEST_F(ParallelExecTest, FilterMatchesSerial) {
  Table t = RandomTable(1, 3000);
  int k = t.ColIndex("k");
  ExpectParallelMatchesSerial(
      [&] {
        return Filter(t, [k](const Row& r) { return AsInt(r[k]) % 3 == 0; });
      },
      "Filter");
}

TEST_F(ParallelExecTest, ProjectMatchesSerial) {
  Table t = RandomTable(2, 3000);
  int v = t.ColIndex("v");
  ExpectParallelMatchesSerial(
      [&] {
        return Project(t, {{"v2", ValueType::kDouble,
                            [v](const Row& r) {
                              return Value{AsDouble(r[v]) * 1.1};
                            }},
                           {"s", ValueType::kString, Col(t, "s")}});
      },
      "Project");
}

TEST_F(ParallelExecTest, HashJoinMatchesSerial) {
  Table left = RandomTable(3, 2500);
  Table right = RandomTable(4, 1500);
  for (JoinType type : {JoinType::kInner, JoinType::kLeftOuter,
                        JoinType::kLeftSemi, JoinType::kLeftAnti}) {
    ExpectParallelMatchesSerial(
        [&] { return HashJoin(left, right, {0}, {0}, type); },
        "HashJoin type " + std::to_string(static_cast<int>(type)));
  }
}

TEST_F(ParallelExecTest, HashJoinMultiKeyMatchesSerial) {
  Table left = RandomTable(5, 2500);
  Table right = RandomTable(6, 2500);
  ExpectParallelMatchesSerial(
      [&] { return HashJoin(left, right, {0, 2}, {0, 2}); },
      "HashJoin multi-key");
}

TEST_F(ParallelExecTest, HashAggregateMatchesSerial) {
  Table t = RandomTable(7, 4000);
  ExpectParallelMatchesSerial(
      [&] {
        return HashAggregateOn(
            t, {"s"},
            {{AggKind::kSum, Col(t, "v"), "sum_v", ValueType::kDouble},
             {AggKind::kAvg, Col(t, "v"), "avg_v", ValueType::kDouble},
             {AggKind::kMin, Col(t, "k"), "min_k", ValueType::kInt},
             {AggKind::kMax, Col(t, "k"), "max_k", ValueType::kInt},
             {AggKind::kCount, nullptr, "cnt", ValueType::kInt},
             {AggKind::kCountDistinct, Col(t, "k"), "dk",
              ValueType::kInt}});
      },
      "HashAggregate");
}

TEST_F(ParallelExecTest, HashAggregateGroupOrderIsFirstSeen) {
  // Group emission order must equal serial first-occurrence order, not
  // hash order — pin it against a hand-computed table.
  Table t({{"g", ValueType::kString}, {"x", ValueType::kInt}});
  for (size_t i = 0; i < 600; ++i) {
    const char* g = i % 3 == 0 ? "c" : (i % 3 == 1 ? "a" : "b");
    t.AddRow({Value{std::string(g)}, Value{static_cast<int64_t>(i)}});
  }
  SetExecThreads(8);
  SetExecMorselSize(kTestMorsel);
  Table agg = HashAggregateOn(
      t, {"g"}, {{AggKind::kCount, nullptr, "n", ValueType::kInt}});
  ASSERT_EQ(agg.num_rows(), 3u);
  EXPECT_EQ(AsString(agg.rows()[0][0]), "c");
  EXPECT_EQ(AsString(agg.rows()[1][0]), "a");
  EXPECT_EQ(AsString(agg.rows()[2][0]), "b");
}

TEST_F(ParallelExecTest, SortByMatchesSerial) {
  Table t = RandomTable(8, 3000);
  // Sort by the low-cardinality key only: ties exercise stability.
  ExpectParallelMatchesSerial([&] { return SortBy(t, {{0, true}}); },
                              "SortBy stability");
  ExpectParallelMatchesSerial(
      [&] { return SortBy(t, {{2, true}, {1, false}}); }, "SortBy 2-key");
}

TEST_F(ParallelExecTest, DbgenBitIdenticalAcrossThreadCounts) {
  tpch::DbgenOptions base;
  base.threads = 1;
  tpch::TpchDatabase serial = tpch::GenerateDatabase(0.01, base);
  for (int threads : {2, 8}) {
    tpch::DbgenOptions opt;
    opt.threads = threads;
    tpch::TpchDatabase par = tpch::GenerateDatabase(0.01, opt);
    std::string tag = "@" + std::to_string(threads) + "t";
    ExpectTablesIdentical(serial.region, par.region, "region " + tag);
    ExpectTablesIdentical(serial.nation, par.nation, "nation " + tag);
    ExpectTablesIdentical(serial.supplier, par.supplier, "supplier " + tag);
    ExpectTablesIdentical(serial.part, par.part, "part " + tag);
    ExpectTablesIdentical(serial.partsupp, par.partsupp, "partsupp " + tag);
    ExpectTablesIdentical(serial.customer, par.customer, "customer " + tag);
    ExpectTablesIdentical(serial.orders, par.orders, "orders " + tag);
    ExpectTablesIdentical(serial.lineitem, par.lineitem, "lineitem " + tag);
  }
}

TEST_F(ParallelExecTest, DbgenSeedStillMatters) {
  tpch::DbgenOptions a;
  a.threads = 4;
  tpch::DbgenOptions b = a;
  b.seed = a.seed + 1;
  tpch::TpchDatabase da = tpch::GenerateDatabase(0.01, a);
  tpch::TpchDatabase db = tpch::GenerateDatabase(0.01, b);
  ASSERT_EQ(da.lineitem.num_rows() > 0, true);
  bool any_diff = da.lineitem.num_rows() != db.lineitem.num_rows();
  size_t n = std::min(da.lineitem.num_rows(), db.lineitem.num_rows());
  for (size_t i = 0; i < n && !any_diff; ++i) {
    if (!(da.lineitem.rows()[i] == db.lineitem.rows()[i])) any_diff = true;
  }
  EXPECT_TRUE(any_diff) << "different seeds produced identical lineitem";
}

}  // namespace
}  // namespace elephant::exec
