#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "common/rng.h"

#include "exec/fused.h"
#include "exec/operators.h"
#include "exec/segcache.h"
#include "exec/spill.h"
#include "exec/table.h"
#include "exec/zonemap.h"

namespace elephant::exec {
namespace {

Table MakeEmployees() {
  Table t({{"id", ValueType::kInt},
           {"dept", ValueType::kString},
           {"salary", ValueType::kDouble}});
  t.AddRow({Value{int64_t{1}}, Value{std::string("eng")}, Value{100.0}});
  t.AddRow({Value{int64_t{2}}, Value{std::string("eng")}, Value{200.0}});
  t.AddRow({Value{int64_t{3}}, Value{std::string("sales")}, Value{150.0}});
  t.AddRow({Value{int64_t{4}}, Value{std::string("sales")}, Value{50.0}});
  t.AddRow({Value{int64_t{5}}, Value{std::string("hr")}, Value{80.0}});
  return t;
}

Table MakeDepts() {
  Table t({{"dname", ValueType::kString}, {"budget", ValueType::kInt}});
  t.AddRow({Value{std::string("eng")}, Value{int64_t{1000}}});
  t.AddRow({Value{std::string("sales")}, Value{int64_t{500}}});
  t.AddRow({Value{std::string("legal")}, Value{int64_t{100}}});
  return t;
}

TEST(ValueTest, AccessorsAndWidening) {
  Value i{int64_t{42}};
  Value d{2.5};
  Value s{std::string("x")};
  EXPECT_EQ(AsInt(i), 42);
  EXPECT_DOUBLE_EQ(AsDouble(i), 42.0);
  EXPECT_DOUBLE_EQ(AsDouble(d), 2.5);
  EXPECT_EQ(AsInt(d), 2);
  EXPECT_EQ(AsString(s), "x");
}

TEST(ValueTest, CompareAcrossNumericTypes) {
  EXPECT_EQ(CompareValues(Value{int64_t{2}}, Value{2.0}), 0);
  EXPECT_LT(CompareValues(Value{int64_t{1}}, Value{1.5}), 0);
  EXPECT_GT(CompareValues(Value{std::string("b")}, Value{std::string("a")}),
            0);
}

TEST(ValueTest, HashStableForEqualInts) {
  EXPECT_EQ(HashValue(Value{int64_t{7}}), HashValue(Value{int64_t{7}}));
  EXPECT_NE(HashValue(Value{int64_t{7}}), HashValue(Value{int64_t{8}}));
}

TEST(TableTest, ColIndexLookup) {
  Table t = MakeEmployees();
  EXPECT_EQ(t.ColIndex("dept"), 1);
  EXPECT_EQ(t.FindCol("nope"), -1);
  EXPECT_EQ(t.num_rows(), 5u);
  EXPECT_EQ(t.num_cols(), 3);
}

TEST(FilterTest, KeepsMatchingRows) {
  Table t = MakeEmployees();
  int sal = t.ColIndex("salary");
  Table out = Filter(t, [sal](const Row& r) {
    return AsDouble(r[sal]) >= 100;
  });
  EXPECT_EQ(out.num_rows(), 3u);
  EXPECT_EQ(out.num_cols(), 3);
}

TEST(ProjectTest, ComputesExpressions) {
  Table t = MakeEmployees();
  Table out = Project(
      t, {{"id", ValueType::kInt, Col(t, "id")},
          {"double_salary", ValueType::kDouble,
           Mul(Col(t, "salary"), Lit(2.0))}});
  EXPECT_EQ(out.num_cols(), 2);
  EXPECT_DOUBLE_EQ(AsDouble(out.rows()[0][1]), 200.0);
}

TEST(HashJoinTest, InnerJoinMatches) {
  Table e = MakeEmployees();
  Table d = MakeDepts();
  Table out = HashJoinOn(e, d, {"dept"}, {"dname"});
  EXPECT_EQ(out.num_rows(), 4u);  // hr has no dept row
  EXPECT_EQ(out.num_cols(), 5);
  // Every row's dept == dname.
  int dept = out.ColIndex("dept");
  int dname = out.ColIndex("dname");
  for (const Row& r : out.rows()) {
    EXPECT_EQ(AsString(r[dept]), AsString(r[dname]));
  }
}

TEST(HashJoinTest, LeftOuterPadsUnmatched) {
  Table e = MakeEmployees();
  Table d = MakeDepts();
  Table out = HashJoinOn(e, d, {"dept"}, {"dname"}, JoinType::kLeftOuter);
  EXPECT_EQ(out.num_rows(), 5u);
  int budget = out.ColIndex("budget");
  int dept = out.ColIndex("dept");
  for (const Row& r : out.rows()) {
    if (AsString(r[dept]) == "hr") {
      EXPECT_EQ(AsInt(r[budget]), 0);  // padded default
    }
  }
}

TEST(HashJoinTest, SemiAndAnti) {
  Table e = MakeEmployees();
  Table d = MakeDepts();
  Table semi = HashJoinOn(e, d, {"dept"}, {"dname"}, JoinType::kLeftSemi);
  EXPECT_EQ(semi.num_rows(), 4u);
  EXPECT_EQ(semi.num_cols(), 3);  // left schema only
  Table anti = HashJoinOn(e, d, {"dept"}, {"dname"}, JoinType::kLeftAnti);
  EXPECT_EQ(anti.num_rows(), 1u);
  EXPECT_EQ(AsString(anti.rows()[0][1]), "hr");
}

TEST(HashJoinTest, SemiDoesNotDuplicateOnMultiMatch) {
  Table left({{"k", ValueType::kInt}});
  left.AddRow({Value{int64_t{1}}});
  Table right({{"k", ValueType::kInt}});
  right.AddRow({Value{int64_t{1}}});
  right.AddRow({Value{int64_t{1}}});
  Table semi = HashJoin(left, right, {0}, {0}, JoinType::kLeftSemi);
  EXPECT_EQ(semi.num_rows(), 1u);
  Table inner = HashJoin(left, right, {0}, {0});
  EXPECT_EQ(inner.num_rows(), 2u);
}

TEST(HashJoinTest, DuplicateColumnNamesGetSuffix) {
  Table a({{"k", ValueType::kInt}});
  a.AddRow({Value{int64_t{1}}});
  Table b({{"k", ValueType::kInt}});
  b.AddRow({Value{int64_t{1}}});
  Table out = HashJoin(a, b, {0}, {0});
  EXPECT_EQ(out.columns()[0].name, "k");
  EXPECT_EQ(out.columns()[1].name, "k_r");
}

TEST(HashJoinTest, MultiColumnKeys) {
  Table a({{"x", ValueType::kInt}, {"y", ValueType::kInt}});
  a.AddRow({Value{int64_t{1}}, Value{int64_t{2}}});
  a.AddRow({Value{int64_t{1}}, Value{int64_t{3}}});
  Table b({{"p", ValueType::kInt}, {"q", ValueType::kInt}});
  b.AddRow({Value{int64_t{1}}, Value{int64_t{2}}});
  Table out = HashJoin(a, b, {0, 1}, {0, 1});
  EXPECT_EQ(out.num_rows(), 1u);
}

TEST(HashAggregateTest, GroupsAndAggregates) {
  Table t = MakeEmployees();
  Table out = HashAggregateOn(
      t, {"dept"},
      {{AggKind::kSum, Col(t, "salary"), "total", ValueType::kDouble},
       {AggKind::kAvg, Col(t, "salary"), "avg", ValueType::kDouble},
       {AggKind::kMin, Col(t, "salary"), "min", ValueType::kDouble},
       {AggKind::kMax, Col(t, "salary"), "max", ValueType::kDouble},
       {AggKind::kCount, nullptr, "n", ValueType::kInt}});
  EXPECT_EQ(out.num_rows(), 3u);
  int dept = out.ColIndex("dept");
  for (const Row& r : out.rows()) {
    if (AsString(r[dept]) == "eng") {
      EXPECT_DOUBLE_EQ(AsDouble(r[out.ColIndex("total")]), 300.0);
      EXPECT_DOUBLE_EQ(AsDouble(r[out.ColIndex("avg")]), 150.0);
      EXPECT_DOUBLE_EQ(AsDouble(r[out.ColIndex("min")]), 100.0);
      EXPECT_DOUBLE_EQ(AsDouble(r[out.ColIndex("max")]), 200.0);
      EXPECT_EQ(AsInt(r[out.ColIndex("n")]), 2);
    }
  }
}

TEST(HashAggregateTest, GlobalAggregateOverEmptyInput) {
  Table t({{"x", ValueType::kDouble}});
  Table out = HashAggregate(
      t, {}, {{AggKind::kSum, [](const Row&) { return Value{1.0}; }, "s",
               ValueType::kDouble}});
  ASSERT_EQ(out.num_rows(), 1u);
  EXPECT_DOUBLE_EQ(AsDouble(out.rows()[0][0]), 0.0);
}

TEST(HashAggregateTest, CountDistinct) {
  Table t = MakeEmployees();
  Table out = HashAggregateOn(
      t, {}, {{AggKind::kCountDistinct, Col(t, "dept"), "depts",
               ValueType::kInt}});
  EXPECT_EQ(AsInt(out.rows()[0][0]), 3);
}

TEST(HashAggregateTest, CountDistinctPerGroup) {
  // Pins exact per-group cardinalities: heavy duplication in one group,
  // all-unique in another, a singleton in a third.
  Table t({{"g", ValueType::kString}, {"v", ValueType::kInt}});
  for (int64_t i = 0; i < 12; ++i) {
    t.AddRow({Value{std::string("dup")}, Value{i % 3}});
  }
  for (int64_t i = 0; i < 5; ++i) {
    t.AddRow({Value{std::string("uniq")}, Value{100 + i}});
  }
  t.AddRow({Value{std::string("one")}, Value{int64_t{7}}});
  Table out = HashAggregateOn(
      t, {"g"},
      {{AggKind::kCountDistinct, Col(t, "v"), "nv", ValueType::kInt},
       {AggKind::kCount, nullptr, "n", ValueType::kInt}});
  ASSERT_EQ(out.num_rows(), 3u);
  int g = out.ColIndex("g");
  int nv = out.ColIndex("nv");
  int n = out.ColIndex("n");
  for (const Row& r : out.rows()) {
    if (AsString(r[g]) == "dup") {
      EXPECT_EQ(AsInt(r[nv]), 3);
      EXPECT_EQ(AsInt(r[n]), 12);
    } else if (AsString(r[g]) == "uniq") {
      EXPECT_EQ(AsInt(r[nv]), 5);
      EXPECT_EQ(AsInt(r[n]), 5);
    } else {
      EXPECT_EQ(AsString(r[g]), "one");
      EXPECT_EQ(AsInt(r[nv]), 1);
      EXPECT_EQ(AsInt(r[n]), 1);
    }
  }
}

TEST(HashAggregateTest, CountDistinctDoesNotCollideAcrossTypes) {
  // int 1, double 1.0, and string "1" serialize with distinct type tags
  // and must count as three different values.
  Table t({{"v", ValueType::kInt}});
  t.AddRow({Value{int64_t{1}}});
  t.AddRow({Value{1.0}});
  t.AddRow({Value{std::string("1")}});
  t.AddRow({Value{int64_t{1}}});  // duplicate of the first row
  Table out = HashAggregateOn(
      t, {}, {{AggKind::kCountDistinct, Col(t, "v"), "nv", ValueType::kInt}});
  EXPECT_EQ(AsInt(out.rows()[0][0]), 3);
}

TEST(SortTest, MultiKeyWithDirections) {
  Table t = MakeEmployees();
  Table out = SortBy(t, {{t.ColIndex("dept"), true},
                         {t.ColIndex("salary"), false}});
  // eng 200, eng 100, hr 80, sales 150, sales 50.
  EXPECT_DOUBLE_EQ(AsDouble(out.rows()[0][2]), 200.0);
  EXPECT_DOUBLE_EQ(AsDouble(out.rows()[1][2]), 100.0);
  EXPECT_EQ(AsString(out.rows()[2][1]), "hr");
  EXPECT_DOUBLE_EQ(AsDouble(out.rows()[3][2]), 150.0);
}

TEST(SortTest, StableForEqualKeys) {
  Table t({{"k", ValueType::kInt}, {"seq", ValueType::kInt}});
  for (int64_t i = 0; i < 10; ++i) {
    t.AddRow({Value{int64_t{1}}, Value{i}});
  }
  Table out = SortBy(t, {{0, true}});
  for (int64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(AsInt(out.rows()[i][1]), i);
  }
}

TEST(LimitTest, TruncatesAndHandlesShortInput) {
  Table t = MakeEmployees();
  EXPECT_EQ(Limit(t, 2).num_rows(), 2u);
  EXPECT_EQ(Limit(t, 100).num_rows(), 5u);
}

TEST(DistinctTest, RemovesDuplicates) {
  Table t({{"x", ValueType::kInt}});
  t.AddRow({Value{int64_t{1}}});
  t.AddRow({Value{int64_t{2}}});
  t.AddRow({Value{int64_t{1}}});
  Table out = Distinct(t);
  EXPECT_EQ(out.num_rows(), 2u);
}

TEST(ExprTest, Arithmetic) {
  Table t = MakeEmployees();
  Expr e = Add(Mul(Col(t, "salary"), Lit(2.0)), Lit(1.0));
  EXPECT_DOUBLE_EQ(AsDouble(e(t.rows()[0])), 201.0);
  Expr s = Sub(Col(t, "salary"), Lit(50.0));
  EXPECT_DOUBLE_EQ(AsDouble(s(t.rows()[0])), 50.0);
}

TEST(SortMergeJoinTest, MatchesHashJoinOnFixture) {
  Table e = MakeEmployees();
  Table d = MakeDepts();
  Table smj = SortMergeJoin(e, d, e.ColIndex("dept"), d.ColIndex("dname"));
  Table hj = HashJoinOn(e, d, {"dept"}, {"dname"});
  EXPECT_EQ(smj.num_rows(), hj.num_rows());
  EXPECT_EQ(smj.num_cols(), hj.num_cols());
}

TEST(SortMergeJoinTest, DuplicateRunsCrossProduct) {
  Table a({{"k", ValueType::kInt}});
  Table b({{"k", ValueType::kInt}});
  for (int i = 0; i < 3; ++i) a.AddRow({Value{int64_t{7}}});
  for (int i = 0; i < 2; ++i) b.AddRow({Value{int64_t{7}}});
  EXPECT_EQ(SortMergeJoin(a, b, 0, 0).num_rows(), 6u);
}

TEST(NestedLoopJoinTest, SupportsNonEquiPredicates) {
  Table e = MakeEmployees();
  Table d = MakeDepts();
  // Band join: salary exceeds the department budget (columns: id, dept,
  // salary, dname, budget).
  Table out = NestedLoopJoin(e, d, [&](const Row& r) {
    return AsDouble(r[2]) > AsDouble(r[4]);
  });
  for (const Row& r : out.rows()) {
    EXPECT_GT(AsDouble(r[2]), AsDouble(r[4]));
  }
  EXPECT_GT(out.num_rows(), 0u);
}

// Property: on random inputs, all three inner-join implementations
// produce identical result multisets.
class JoinEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(JoinEquivalenceTest, AllJoinsAgree) {
  elephant::Rng rng(GetParam());
  Table left({{"k", ValueType::kInt}, {"lv", ValueType::kInt}});
  Table right({{"k", ValueType::kInt}, {"rv", ValueType::kInt}});
  for (int i = 0; i < 200; ++i) {
    left.AddRow({Value{static_cast<int64_t>(rng.Uniform(40))},
                 Value{static_cast<int64_t>(i)}});
  }
  for (int i = 0; i < 150; ++i) {
    right.AddRow({Value{static_cast<int64_t>(rng.Uniform(40))},
                  Value{static_cast<int64_t>(i)}});
  }
  Table hj = HashJoin(left, right, {0}, {0});
  Table smj = SortMergeJoin(left, right, 0, 0);
  Table nlj = NestedLoopJoin(left, right, [](const Row& r) {
    return CompareValues(r[0], r[2]) == 0;
  });
  ASSERT_EQ(hj.num_rows(), smj.num_rows());
  ASSERT_EQ(hj.num_rows(), nlj.num_rows());
  // Compare as sorted multisets of (k, lv, rv).
  auto signature = [](const Table& t) {
    std::vector<std::tuple<int64_t, int64_t, int64_t>> sig;
    for (const Row& r : t.rows()) {
      sig.emplace_back(AsInt(r[0]), AsInt(r[1]), AsInt(r[3]));
    }
    std::sort(sig.begin(), sig.end());
    return sig;
  };
  EXPECT_EQ(signature(hj), signature(smj));
  EXPECT_EQ(signature(hj), signature(nlj));
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, JoinEquivalenceTest,
                         ::testing::Values(1, 17, 99, 4242));

TEST(TableTest, ToStringShowsHeaderAndRows) {
  Table t = MakeDepts();
  std::string s = t.ToString(2);
  EXPECT_NE(s.find("dname"), std::string::npos);
  EXPECT_NE(s.find("eng"), std::string::npos);
  EXPECT_NE(s.find("3 rows total"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Columnar storage & vectorized kernels (DESIGN.md §12). Every operator
// must produce a bit-identical Table on the columnar fast path and on
// the legacy row path (SetExecForceRowPath).

class ColumnarTest : public ::testing::Test {
 protected:
  void TearDown() override { SetExecForceRowPath(false); }
};

Table RandomMixedTable(uint64_t seed, size_t rows) {
  Table t({{"k", ValueType::kInt},
           {"v", ValueType::kDouble},
           {"s", ValueType::kString}});
  elephant::Rng rng(seed);
  for (size_t i = 0; i < rows; ++i) {
    t.AddRow({Value{static_cast<int64_t>(rng.UniformRange(1, 40))},
              Value{rng.NextDouble() * 100.0 - 50.0},
              Value{"s" + std::to_string(rng.UniformRange(1, 12))}});
  }
  return t;
}

void ExpectExactlyEqual(const Table& a, const Table& b,
                        const std::string& what) {
  ASSERT_EQ(a.num_cols(), b.num_cols()) << what;
  ASSERT_EQ(a.num_rows(), b.num_rows()) << what;
  for (size_t i = 0; i < a.num_rows(); ++i) {
    for (int c = 0; c < a.num_cols(); ++c) {
      // Variant equality: exact alternative and exact bits.
      ASSERT_TRUE(a.rows()[i][c] == b.rows()[i][c])
          << what << " differs at row " << i << " col " << c;
    }
  }
  EXPECT_EQ(TableFingerprint(a), TableFingerprint(b)) << what;
}

// Runs `op` on the columnar fast path and on the forced row path and
// requires bit-identical outputs.
template <typename Op>
void ExpectLayoutsAgree(const Op& op, const std::string& what) {
  SetExecForceRowPath(false);
  Table columnar = op();
  SetExecForceRowPath(true);
  Table row = op();
  SetExecForceRowPath(false);
  ExpectExactlyEqual(columnar, row, what);
}

TEST_F(ColumnarTest, FilterAgreesWithRowPath) {
  Table t = RandomMixedTable(11, 500);
  ExpectLayoutsAgree(
      [&] {
        return Filter(t, [](const Row& r) { return AsInt(r[0]) % 3 == 0; });
      },
      "Filter");
}

TEST_F(ColumnarTest, IndexPredicateAgreesWithRowPredicate) {
  Table t = RandomMixedTable(12, 500);
  const int64_t* k = t.IntData(0).data();
  const double* v = t.DoubleData(1).data();
  Table by_index = Filter(t, IndexPredicate([k, v](size_t i) {
                            return k[i] % 3 == 0 && v[i] > 0.0;
                          }));
  Table by_row = Filter(t, [](const Row& r) {
    return AsInt(r[0]) % 3 == 0 && AsDouble(r[1]) > 0.0;
  });
  ExpectExactlyEqual(by_index, by_row, "IndexPredicate vs Row predicate");
}

TEST_F(ColumnarTest, ProjectColumnsAgreesWithProject) {
  Table t = RandomMixedTable(13, 400);
  const int64_t* k = t.IntData(0).data();
  const double* v = t.DoubleData(1).data();
  Table pc = ProjectColumns(
      t, {CopyCol(t, "s"), CopyColAs(t, "k", "key"),
          DoubleExprCol("v2", [v](size_t i) { return v[i] * 1.5; }),
          IntExprCol("k2", [k](size_t i) { return k[i] + 1; }),
          StrExprCol("tag", [k](size_t i) {
            return std::string(k[i] % 2 ? "odd" : "even");
          })});
  int ck = t.ColIndex("k");
  int cv = t.ColIndex("v");
  Table pr = Project(
      t, {{"s", ValueType::kString, Col(t, "s")},
          {"key", ValueType::kInt, Col(t, "k")},
          {"v2", ValueType::kDouble,
           [cv](const Row& r) { return Value{AsDouble(r[cv]) * 1.5}; }},
          {"k2", ValueType::kInt,
           [ck](const Row& r) { return Value{AsInt(r[ck]) + 1}; }},
          {"tag", ValueType::kString, [ck](const Row& r) {
             return Value{std::string(AsInt(r[ck]) % 2 ? "odd" : "even")};
           }}});
  ExpectExactlyEqual(pc, pr, "ProjectColumns vs Project");
}

TEST_F(ColumnarTest, HashJoinAgreesWithRowPathAllTypes) {
  Table left = RandomMixedTable(14, 400);
  Table right = RandomMixedTable(15, 300);
  for (JoinType type : {JoinType::kInner, JoinType::kLeftOuter,
                        JoinType::kLeftSemi, JoinType::kLeftAnti}) {
    ExpectLayoutsAgree(
        [&] { return HashJoin(left, right, {0, 2}, {0, 2}, type); },
        "HashJoin type " + std::to_string(static_cast<int>(type)));
  }
}

TEST_F(ColumnarTest, HashAggregateAgreesWithRowPath) {
  Table t = RandomMixedTable(16, 600);
  ExpectLayoutsAgree(
      [&] {
        return HashAggregateOn(
            t, {"s"},
            {ColAgg(AggKind::kSum, t, "v", "sum_v", ValueType::kDouble),
             ColAgg(AggKind::kAvg, t, "v", "avg_v", ValueType::kDouble),
             ColAgg(AggKind::kMin, t, "k", "min_k", ValueType::kInt),
             ColAgg(AggKind::kMax, t, "k", "max_k", ValueType::kInt),
             ColAgg(AggKind::kCountDistinct, t, "k", "dk", ValueType::kInt),
             CountAgg("n")});
      },
      "HashAggregate");
}

TEST_F(ColumnarTest, VecAggMatchesEquivalentRowExpression) {
  Table t = RandomMixedTable(17, 500);
  const int64_t* k = t.IntData(0).data();
  const double* v = t.DoubleData(1).data();
  Table vec = HashAggregateOn(
      t, {"s"},
      {VecAgg(AggKind::kSum, "kv", ValueType::kDouble,
              [k, v](size_t i) { return v[i] * static_cast<double>(k[i]); }),
       CountAgg("n")});
  // The row twin spells out the same FP expression per row.
  int ck = t.ColIndex("k");
  int cv = t.ColIndex("v");
  SetExecForceRowPath(true);
  Table row = HashAggregateOn(
      t, {"s"},
      {{AggKind::kSum,
        [ck, cv](const Row& r) {
          return Value{AsDouble(r[cv]) * static_cast<double>(AsInt(r[ck]))};
        },
        "kv", ValueType::kDouble},
       {AggKind::kCount, nullptr, "n", ValueType::kInt}});
  SetExecForceRowPath(false);
  ExpectExactlyEqual(vec, row, "VecAgg vs row expression");
}

TEST_F(ColumnarTest, SortDistinctLimitAgreeWithRowPath) {
  Table t = RandomMixedTable(18, 500);
  ExpectLayoutsAgree([&] { return SortBy(t, {{2, true}, {1, false}}); },
                     "SortBy");
  ExpectLayoutsAgree([&] { return Distinct(t); }, "Distinct");
  ExpectLayoutsAgree([&] { return Limit(t, 17); }, "Limit");
}

TEST(StringDictionaryTest, RoundTripAndPoolSharing) {
  Table t({{"s", ValueType::kString}});
  t.AddRow({Value{std::string("alpha")}});
  t.AddRow({Value{std::string("beta")}});
  t.AddRow({Value{std::string("alpha")}});
  ASSERT_TRUE(t.EnsureColumnar());
  const std::vector<uint32_t>& codes = t.StrCodes(0);
  EXPECT_EQ(codes[0], codes[2]);  // duplicates share one code
  EXPECT_NE(codes[0], codes[1]);
  EXPECT_EQ(t.StrAt(0, 0), "alpha");
  EXPECT_EQ(t.pool().Get(codes[1]), "beta");
  EXPECT_EQ(t.pool().HashOf(codes[0]), t.pool().HashOf(codes[2]));
  EXPECT_EQ(t.CodeFor("beta"), codes[1]);
  EXPECT_EQ(t.CodeFor("gamma"), StringPool::kNoCode);
  // ValueAt materializes single cells without the row cache.
  EXPECT_EQ(AsString(t.ValueAt(2, 0)), "alpha");

  // Code-preserving derivation shares the pool; codes survive unchanged.
  uint32_t alpha = codes[0];
  Table f = Filter(t, IndexPredicate([&codes, alpha](size_t i) {
                     return codes[i] == alpha;
                   }));
  EXPECT_EQ(f.num_rows(), 2u);
  EXPECT_EQ(f.pool_ptr().get(), t.pool_ptr().get());
  EXPECT_EQ(f.StrCodes(0)[0], alpha);

  // Equality filter on a never-interned string: kNoCode matches nothing.
  uint32_t none = t.CodeFor("gamma");
  Table empty = Filter(
      t, IndexPredicate([&codes, none](size_t i) { return codes[i] == none; }));
  EXPECT_EQ(empty.num_rows(), 0u);
}

TEST_F(ColumnarTest, EmptyAndAllFilteredEdges) {
  Table t = RandomMixedTable(19, 300);
  Table none = Filter(t, IndexPredicate([](size_t) { return false; }));
  ASSERT_EQ(none.num_rows(), 0u);

  // Empty input flows through every kernel on both layouts.
  ExpectLayoutsAgree(
      [&] {
        return HashAggregateOn(
            none, {"s"},
            {ColAgg(AggKind::kSum, none, "v", "sum_v", ValueType::kDouble),
             CountAgg("n")});
      },
      "grouped agg over all-filtered input");
  ExpectLayoutsAgree(
      [&] {
        return HashAggregateOn(
            none, {},
            {ColAgg(AggKind::kSum, none, "v", "sum_v", ValueType::kDouble),
             CountAgg("n")});
      },
      "global agg over empty input");
  EXPECT_EQ(ProjectColumns(none, {CopyCol(none, "k")}).num_rows(), 0u);
  EXPECT_EQ(SortBy(none, {{0, true}}).num_rows(), 0u);
  EXPECT_EQ(HashJoinOn(none, t, {"k"}, {"k"}).num_rows(), 0u);
  EXPECT_EQ(Distinct(none).num_rows(), 0u);
  EXPECT_EQ(Limit(none, 5).num_rows(), 0u);

  // A columnar-only VecAgg over empty input still produces the one
  // zero-initialized global row (the row path cannot evaluate VecAgg).
  const double* v = none.DoubleData(1).data();
  Table g = HashAggregateOn(none, {},
                            {VecAgg(AggKind::kSum, "s", ValueType::kDouble,
                                    [v](size_t i) { return v[i]; })});
  ASSERT_EQ(g.num_rows(), 1u);
  EXPECT_DOUBLE_EQ(AsDouble(g.rows()[0][0]), 0.0);
}

TEST_F(ColumnarTest, MixedIntDoubleJoinKeysMatch) {
  // Regression for the HashValue/CompareValues consistency fix: an int64
  // key must hash equal to a double carrying the same magnitude, so a
  // typed int column joins a double column wherever the double images
  // agree — on the columnar path and the row path alike.
  Table li({{"ik", ValueType::kInt}});
  li.AddRow({Value{int64_t{1}}});
  li.AddRow({Value{int64_t{2}}});
  li.AddRow({Value{int64_t{3}}});
  Table rd({{"dk", ValueType::kDouble}});
  rd.AddRow({Value{1.0}});
  rd.AddRow({Value{2.5}});
  rd.AddRow({Value{3.0}});
  ExpectLayoutsAgree([&] { return HashJoinOn(li, rd, {"ik"}, {"dk"}); },
                     "mixed int/double join keys");
  Table out = HashJoinOn(li, rd, {"ik"}, {"dk"});
  ASSERT_EQ(out.num_rows(), 2u);
  EXPECT_EQ(AsInt(out.rows()[0][0]), 1);
  EXPECT_EQ(AsInt(out.rows()[1][0]), 3);
}

TEST(RowBatchTest, AppendBatchMatchesAddRow) {
  std::vector<Column> schema = {{"k", ValueType::kInt},
                                {"v", ValueType::kDouble},
                                {"s", ValueType::kString}};
  Table by_row(schema);
  Table by_batch(schema);
  RowBatch b1(schema);
  RowBatch b2(schema);
  b1.ReserveRows(3);
  auto add = [&](RowBatch& b, int64_t k, double v, const char* s) {
    b.AddInt(0, k);
    b.AddDouble(1, v);
    b.AddString(2, s);
    by_row.AddRow({Value{k}, Value{v}, Value{std::string(s)}});
  };
  add(b1, 1, 1.5, "x");
  add(b1, 2, -2.5, "y");
  add(b1, 3, 0.0, "x");
  add(b2, 4, 7.0, "z");
  add(b2, 5, 8.0, "y");
  EXPECT_EQ(b1.num_rows(), 3u);
  by_batch.Reserve(5);
  by_batch.AppendBatch(std::move(b1));
  by_batch.AppendBatch(std::move(b2));
  ASSERT_EQ(by_batch.num_rows(), 5u);
  ExpectExactlyEqual(by_batch, by_row, "AppendBatch vs AddRow");
  // Interning happened in batch order, so dictionary codes agree too.
  ASSERT_TRUE(by_batch.EnsureColumnar());
  ASSERT_TRUE(by_row.EnsureColumnar());
  EXPECT_EQ(by_batch.StrCodes(2), by_row.StrCodes(2));
}

// ---------------------------------------------------------------------------
// Fused morsel pipelines (DESIGN.md §14): FusedSelect / FusedFilter /
// FusedAggregate must be bit-identical to their materializing oracle
// twins at every selectivity and across every chunk-boundary shape.

class FusedTest : public ::testing::Test {
 protected:
  void SetUp() override { fused_was_ = ExecFusedPath(); }
  void TearDown() override {
    SetExecFusedPath(fused_was_);
    SetZoneMapChunkRows(0);
    SetExecForceRowPath(false);
    ResetFusedCounters();
  }

 private:
  bool fused_was_ = true;
};

// "x" ascends (sorted, binary-searchable), "y" is uniform noise (zone
// bounds overlap everywhere), "v" is a payload, "s" is block-clustered
// so dictionary-code intervals actually prune.
Table FusedFixture(size_t rows) {
  Table t({{"x", ValueType::kInt},
           {"y", ValueType::kInt},
           {"v", ValueType::kDouble},
           {"s", ValueType::kString}});
  elephant::Rng rng(29);
  for (size_t i = 0; i < rows; ++i) {
    t.AddRow({Value{static_cast<int64_t>(i)},
              Value{static_cast<int64_t>(rng.Uniform(1000))},
              Value{rng.NextDouble() * 100.0 - 50.0},
              Value{"g" + std::to_string(i / 250)}});
  }
  return t;
}

// The oracle: evaluate the same spec one row at a time and gather.
Table OracleFilter(const Table& t, const ScanSpec& spec) {
  return Filter(t, SpecPredicate(t, spec));
}

TEST_F(FusedTest, SelectMatchesOracleAcrossSelectivities) {
  SetExecFusedPath(true);  // pin: this test compares fused vs oracle
  Table t = FusedFixture(1000);
  SetZoneMapChunkRows(64);
  // Cut points hitting ~0%, ~1%, 50%, and 100% of rows, applied to the
  // sorted column (binary-search path) and the noise column (zone
  // bounds cannot prune: every chunk scans).
  for (const char* col : {"x", "y"}) {
    for (double cut : {0.0, 10.0, 500.0, 1000.0}) {
      ScanSpec spec = SpecOf(ColLess(t, col, cut));
      std::vector<uint32_t> fused = FusedSelect(t, spec);
      std::vector<uint32_t> oracle =
          EvalSelection(t.num_rows(), SpecPredicate(t, spec));
      EXPECT_EQ(fused, oracle) << col << " < " << cut;
    }
  }
}

TEST_F(FusedTest, FilterMatchesOracleAtChunkBoundaryShapes) {
  SetExecFusedPath(true);
  Table t = FusedFixture(1000);
  ScanSpec spec;
  spec.ranges.push_back(ColRange(t, "v", -20.0, 35.0));
  spec.codes.push_back(CodeEquals(t, "s", "g1"));
  // Single-row chunks, misaligned chunks, chunk == table, chunk >
  // table: all must gather the identical relation.
  for (size_t chunk : {size_t{1}, size_t{64}, size_t{333}, size_t{1000},
                       size_t{5000}}) {
    SetZoneMapChunkRows(chunk);
    ExpectExactlyEqual(FusedFilter(t, spec), OracleFilter(t, spec),
                       "chunk_rows=" + std::to_string(chunk));
  }
}

TEST_F(FusedTest, EmptyTableAndAllPrunedScans) {
  SetExecFusedPath(true);
  SetZoneMapChunkRows(64);
  Table empty({{"x", ValueType::kInt}, {"v", ValueType::kDouble}});
  EXPECT_TRUE(FusedSelect(empty, SpecOf(ColLess(empty, "x", 10.0))).empty());
  EXPECT_EQ(FusedFilter(empty, SpecOf(ColLess(empty, "x", 10.0))).num_rows(),
            0u);

  Table t = FusedFixture(1000);
  ResetFusedCounters();
  // No row satisfies y < 0: every chunk's zone bounds refute the range
  // before any row is touched.
  ScanSpec none = SpecOf(ColLess(t, "y", 0.0));
  EXPECT_TRUE(FusedSelect(t, none).empty());
  FusedCounters c = FusedCountersSnapshot();
  EXPECT_EQ(c.chunks_pruned, 16u);  // ceil(1000 / 64)
  EXPECT_EQ(c.chunks_scanned, 0u);
  EXPECT_EQ(c.rows_scanned, 0u);
  ExpectExactlyEqual(FusedFilter(t, none), OracleFilter(t, none),
                     "all-pruned");
}

TEST_F(FusedTest, FullMatchEmitsChunksWithoutRowEvaluation) {
  SetExecFusedPath(true);
  Table t = FusedFixture(1000);
  SetZoneMapChunkRows(64);
  ResetFusedCounters();
  // Every row satisfies y >= 0, provable from the bounds alone.
  ScanSpec all = SpecOf(ColAtLeast(t, "y", 0.0));
  std::vector<uint32_t> sel = FusedSelect(t, all);
  EXPECT_EQ(sel.size(), t.num_rows());
  FusedCounters c = FusedCountersSnapshot();
  EXPECT_EQ(c.chunks_full_match, 16u);
  EXPECT_EQ(c.rows_scanned, 0u);
  // A residual makes full-match emission unsound; rows must be
  // evaluated again even though the declared bounds match everything.
  ResetFusedCounters();
  ScanSpec residual = all;
  residual.residual = IndexPredicate([](size_t i) { return i % 2 == 0; });
  std::vector<uint32_t> half = FusedSelect(t, residual);
  EXPECT_EQ(half.size(), t.num_rows() / 2);
  c = FusedCountersSnapshot();
  EXPECT_EQ(c.chunks_full_match, 0u);
  EXPECT_EQ(c.rows_scanned, t.num_rows());
  ExpectExactlyEqual(FusedFilter(t, residual), OracleFilter(t, residual),
                     "residual");
}

TEST_F(FusedTest, SortedColumnCollapsesToBinarySearchInterval) {
  SetExecFusedPath(true);
  Table t = FusedFixture(1000);
  SetZoneMapChunkRows(64);
  ResetFusedCounters();
  ScanSpec mid = SpecOf(ColRange(t, "x", 250.0, 749.0));
  std::vector<uint32_t> sel = FusedSelect(t, mid);
  ASSERT_EQ(sel.size(), 500u);
  EXPECT_EQ(sel.front(), 250u);
  EXPECT_EQ(sel.back(), 749u);
  FusedCounters c = FusedCountersSnapshot();
  EXPECT_EQ(c.sorted_bounded, 1u);
  // The interval [250, 750) covers chunks 3..11; the rest never reach
  // classification row-by-row, and the covered chunks need no per-row
  // range checks (the constraint was consumed by the binary search).
  EXPECT_EQ(c.chunks_pruned, 7u);
  EXPECT_EQ(c.rows_scanned, 0u);
  EXPECT_EQ(c.chunks_full_match, 9u);
  ExpectExactlyEqual(FusedFilter(t, mid), OracleFilter(t, mid),
                     "sorted interval");
}

TEST_F(FusedTest, DictionaryCodeIntervalsPrune) {
  SetExecFusedPath(true);
  Table t = FusedFixture(1000);
  SetZoneMapChunkRows(64);
  ResetFusedCounters();
  // "s" is g0/g1/g2/g3 in 250-row blocks: chunks wholly outside g1's
  // block have code intervals that cannot contain its code.
  ScanSpec spec = SpecOf(CodeEquals(t, "s", "g1"));
  Table fused = FusedFilter(t, spec);
  EXPECT_EQ(fused.num_rows(), 250u);
  FusedCounters c = FusedCountersSnapshot();
  EXPECT_GT(c.chunks_pruned, 0u);
  EXPECT_GT(c.chunks_full_match, 0u);
  ExpectExactlyEqual(fused, OracleFilter(t, spec), "code interval");
}

TEST_F(FusedTest, AggregateMatchesMaterializedPipeline) {
  SetExecFusedPath(true);
  Table t = FusedFixture(1000);
  SetZoneMapChunkRows(64);
  ScanSpec spec;
  spec.ranges.push_back(ColLess(t, "y", 600.0));
  AggFactory aggs = [](const Table& in) {
    return std::vector<AggExpr>{
        ColAgg(AggKind::kSum, in, "v", "sum_v", ValueType::kDouble),
        ColAgg(AggKind::kAvg, in, "v", "avg_v", ValueType::kDouble),
        ColAgg(AggKind::kMin, in, "x", "min_x", ValueType::kInt),
        ColAgg(AggKind::kMax, in, "x", "max_x", ValueType::kInt),
        ColAgg(AggKind::kCountDistinct, in, "y", "dy", ValueType::kInt),
        CountAgg("n")};
  };
  Table filtered = OracleFilter(t, spec);
  for (const std::vector<std::string>& groups :
       {std::vector<std::string>{"s"}, std::vector<std::string>{}}) {
    Table fused = FusedAggregate(t, spec, groups, aggs);
    Table oracle = HashAggregateOn(filtered, groups, aggs(filtered));
    ExpectExactlyEqual(fused, oracle,
                       groups.empty() ? "global agg" : "grouped agg");
  }
  // Empty selection with min/max aggregates: the fused path must fall
  // back to the materialized pipeline (DefaultValue finalization) and
  // still agree.
  ScanSpec none = SpecOf(ColLess(t, "y", 0.0));
  Table none_filtered = OracleFilter(t, none);
  Table fused_empty = FusedAggregate(t, none, {}, aggs);
  Table oracle_empty = HashAggregateOn(none_filtered, {}, aggs(none_filtered));
  ExpectExactlyEqual(fused_empty, oracle_empty, "empty-selection min/max");
}

TEST_F(FusedTest, KnobOffTakesOraclePathBitIdentically) {
  Table t = FusedFixture(1000);
  SetZoneMapChunkRows(64);
  ScanSpec spec;
  spec.ranges.push_back(ColRange(t, "v", -30.0, 10.0));
  spec.codes.push_back(CodeMatch(t, "s", [](const std::string& s) {
    return s == "g0" || s == "g2";
  }));
  SetExecFusedPath(true);
  Table on = FusedFilter(t, spec);
  ResetFusedCounters();
  SetExecFusedPath(false);
  Table off = FusedFilter(t, spec);
  // The oracle path plans nothing: no chunks classified, no zone maps
  // consulted.
  FusedCounters c = FusedCountersSnapshot();
  EXPECT_EQ(c.chunks_scanned + c.chunks_pruned + c.chunks_full_match, 0u);
  ExpectExactlyEqual(on, off, "fused knob on vs off");
  AggFactory aggs = [](const Table& in) {
    return std::vector<AggExpr>{
        ColAgg(AggKind::kSum, in, "v", "sum_v", ValueType::kDouble),
        CountAgg("n")};
  };
  SetExecFusedPath(true);
  Table agg_on = FusedAggregate(t, spec, {"s"}, aggs);
  SetExecFusedPath(false);
  Table agg_off = FusedAggregate(t, spec, {"s"}, aggs);
  ExpectExactlyEqual(agg_on, agg_off, "fused agg knob on vs off");
}

// ---------------------------------------------------------------------------
// Out-of-core execution (DESIGN.md §15). Under a finite memory budget
// the pipeline breakers partition and spill through the segment cache;
// every spilled answer must be bit-identical to the unlimited
// in-memory run (same rows, same order, same floating-point bits), at
// any thread count. The in-memory path (budget 0) is the oracle.

class SpillTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ambient_budget_ = ExecMemoryBudget();
    SetExecMemoryBudget(0);
    ResetSpillCounters();
    base_entries_ = SegmentCache::Global().GetStats().entries;
  }
  void TearDown() override {
    EXPECT_EQ(SegmentCache::Global().GetStats().entries, base_entries_)
        << "a spilling operator leaked segments in the global cache";
    SetExecMemoryBudget(ambient_budget_);
    SetExecThreads(0);
    SetExecMorselSize(2048);
  }

 private:
  size_t ambient_budget_ = 0;
  uint64_t base_entries_ = 0;
};

Table SpillFacts(uint64_t seed, size_t rows, int64_t key_domain) {
  Table t({{"k", ValueType::kInt},
           {"v", ValueType::kDouble},
           {"s", ValueType::kString}});
  elephant::Rng rng(seed);
  for (size_t i = 0; i < rows; ++i) {
    t.AddRow({Value{rng.UniformRange(1, key_domain)},
              Value{rng.NextDouble() * 1000.0 - 500.0},
              Value{"g" + std::to_string(rng.UniformRange(1, 64))}});
  }
  return t;
}

// 70% of the rows share one hot key; the rest spread over ~1000 keys.
Table SkewedFacts(size_t rows, int64_t hot_key) {
  Table t({{"k", ValueType::kInt}, {"v", ValueType::kDouble}});
  for (size_t i = 0; i < rows; ++i) {
    int64_t k = (i % 10 < 7) ? hot_key : static_cast<int64_t>(i % 997);
    t.AddRow({Value{k}, Value{static_cast<double>(i) * 0.5}});
  }
  return t;
}

TEST_F(SpillTest, GraceJoinBitIdenticalForEveryJoinType) {
  Table left = SpillFacts(101, 6000, 300);
  Table right = SpillFacts(102, 5000, 300);
  for (JoinType type : {JoinType::kInner, JoinType::kLeftOuter,
                        JoinType::kLeftSemi, JoinType::kLeftAnti}) {
    SetExecMemoryBudget(0);
    Table oracle = HashJoinOn(left, right, {"k"}, {"k"}, type);
    SetExecMemoryBudget(256 << 10);
    ASSERT_TRUE(SpillJoinPlanned(right));
    uint64_t spills_before = GetSpillCounters().join_spills;
    Table spilled = HashJoinOn(left, right, {"k"}, {"k"}, type);
    EXPECT_GT(GetSpillCounters().join_spills, spills_before);
    ExpectExactlyEqual(spilled, oracle,
                       "grace join type " +
                           std::to_string(static_cast<int>(type)));
  }
}

TEST_F(SpillTest, GraceJoinBitIdenticalAcrossThreads) {
  Table left = SpillFacts(103, 8000, 200);
  Table right = SpillFacts(104, 6000, 200);
  SetExecMemoryBudget(0);
  Table oracle = HashJoinOn(left, right, {"k"}, {"k"}, JoinType::kInner);
  SetExecMemoryBudget(256 << 10);
  for (int threads : {1, 8}) {
    SetExecThreads(threads);
    SetExecMorselSize(256);
    Table spilled = HashJoinOn(left, right, {"k"}, {"k"}, JoinType::kInner);
    ExpectExactlyEqual(spilled, oracle,
                       "grace join @" + std::to_string(threads) + " threads");
  }
}

TEST_F(SpillTest, GraceJoinRecursesOnSkewedKeys) {
  // The partition holding the hot key cannot fit in its memory share
  // and must re-partition on deeper hash bits. Semi/anti keep the
  // output linear in |left| while still stressing the skewed build.
  Table left = SkewedFacts(8000, 7);
  Table right = SkewedFacts(6000, 7);
  for (JoinType type : {JoinType::kLeftSemi, JoinType::kLeftAnti}) {
    SetExecMemoryBudget(0);
    Table oracle = HashJoinOn(left, right, {"k"}, {"k"}, type);
    SetExecMemoryBudget(64 << 10);
    uint64_t rec_before = GetSpillCounters().recursions;
    Table spilled = HashJoinOn(left, right, {"k"}, {"k"}, type);
    EXPECT_GT(GetSpillCounters().recursions, rec_before);
    ExpectExactlyEqual(spilled, oracle, "skewed grace join");
  }
}

std::vector<AggExpr> SpillAggs(const Table& t) {
  return {ColAgg(AggKind::kSum, t, "v", "sum_v", ValueType::kDouble),
          ColAgg(AggKind::kMin, t, "v", "min_v", ValueType::kDouble),
          ColAgg(AggKind::kMax, t, "v", "max_v", ValueType::kDouble),
          CountAgg("n")};
}

TEST_F(SpillTest, SpillingAggregateBitIdentical) {
  Table t = SpillFacts(105, 20000, 500);
  std::vector<int> groups = {t.ColIndex("s"), t.ColIndex("k")};
  SetExecMemoryBudget(0);
  Table oracle = HashAggregate(t, groups, SpillAggs(t));
  SetExecMemoryBudget(512 << 10);
  ASSERT_TRUE(SpillAggPlanned(t, t.num_rows()));
  uint64_t spills_before = GetSpillCounters().agg_spills;
  for (int threads : {1, 8}) {
    SetExecThreads(threads);
    SetExecMorselSize(256);
    Table spilled = HashAggregate(t, groups, SpillAggs(t));
    ExpectExactlyEqual(spilled, oracle,
                       "spilling agg @" + std::to_string(threads) +
                           " threads");
  }
  EXPECT_GT(GetSpillCounters().agg_spills, spills_before);
}

TEST_F(SpillTest, SpillingAggregateSelectedBitIdentical) {
  Table t = SpillFacts(106, 18000, 400);
  std::vector<uint32_t> sel;
  for (uint32_t i = 0; i < t.num_rows(); ++i) {
    if (i % 7 != 0) sel.push_back(i);
  }
  std::vector<int> groups = {t.ColIndex("k")};
  SetExecMemoryBudget(0);
  Table oracle = HashAggregateSelected(t, sel, groups, SpillAggs(t));
  SetExecMemoryBudget(256 << 10);
  ASSERT_TRUE(SpillAggPlanned(t, sel.size()));
  Table spilled = HashAggregateSelected(t, sel, groups, SpillAggs(t));
  ExpectExactlyEqual(spilled, oracle, "spilling agg over selection");
}

TEST_F(SpillTest, SpillingAggregateRecursesUnderTinyBudget) {
  Table t = SpillFacts(107, 20000, 2000);
  std::vector<int> groups = {t.ColIndex("k"), t.ColIndex("s")};
  SetExecMemoryBudget(0);
  Table oracle = HashAggregate(t, groups, SpillAggs(t));
  SetExecMemoryBudget(16 << 10);
  uint64_t rec_before = GetSpillCounters().recursions;
  Table spilled = HashAggregate(t, groups, SpillAggs(t));
  EXPECT_GT(GetSpillCounters().recursions, rec_before);
  ExpectExactlyEqual(spilled, oracle, "recursive spilling agg");
}

TEST_F(SpillTest, ExternalSortBitIdenticalMultiKey) {
  Table t = SpillFacts(108, 20000, 50);
  std::vector<SortKey> keys = {{t.ColIndex("s"), true},
                               {t.ColIndex("v"), false},
                               {t.ColIndex("k"), true}};
  SetExecMemoryBudget(0);
  Table oracle = SortBy(t, keys);
  SetExecMemoryBudget(128 << 10);
  ASSERT_TRUE(SpillSortPlanned(t, keys));
  uint64_t spills_before = GetSpillCounters().sort_spills;
  for (int threads : {1, 8}) {
    SetExecThreads(threads);
    SetExecMorselSize(256);
    Table spilled = SortBy(t, keys);
    ExpectExactlyEqual(spilled, oracle,
                       "external sort @" + std::to_string(threads) +
                           " threads");
  }
  EXPECT_GT(GetSpillCounters().sort_spills, spills_before);
}

TEST_F(SpillTest, ExternalSortIsStableOnHeavyTies) {
  // A single low-cardinality key: ~300 rows per tie class. Stability
  // requires the merged permutation to preserve original row order
  // within every class, exactly like the in-memory stable sort.
  Table t = SpillFacts(109, 20000, 50);
  std::vector<SortKey> keys = {{t.ColIndex("s"), true}};
  SetExecMemoryBudget(0);
  Table oracle = SortBy(t, keys);
  SetExecMemoryBudget(128 << 10);
  ASSERT_TRUE(SpillSortPlanned(t, keys));
  Table spilled = SortBy(t, keys);
  ExpectExactlyEqual(spilled, oracle, "external sort heavy ties");
}

TEST_F(SpillTest, TryOperatorsMatchInMemoryTwinsDirectly) {
  Table left = SpillFacts(110, 5000, 150);
  Table right = SpillFacts(111, 4000, 150);
  Table t = SpillFacts(112, 12000, 300);
  std::vector<int> groups = {t.ColIndex("s")};
  std::vector<SortKey> keys = {{t.ColIndex("v"), true},
                               {t.ColIndex("k"), false}};
  SetExecMemoryBudget(0);
  Table j_oracle = HashJoinOn(left, right, {"k"}, {"k"}, JoinType::kInner);
  Table a_oracle = HashAggregate(t, groups, SpillAggs(t));
  Table s_oracle = SortBy(t, keys);
  SetExecMemoryBudget(96 << 10);
  std::vector<int> lk = {left.ColIndex("k")};
  std::vector<int> rk = {right.ColIndex("k")};
  Result<Table> j = TryGraceHashJoin(left, right, lk, rk, JoinType::kInner);
  ASSERT_TRUE(j.ok()) << j.status().message();
  ExpectExactlyEqual(j.value(), j_oracle, "TryGraceHashJoin direct");
  Result<Table> a = TrySpillingHashAggregate(t, groups, SpillAggs(t), nullptr);
  ASSERT_TRUE(a.ok()) << a.status().message();
  ExpectExactlyEqual(a.value(), a_oracle, "TrySpillingHashAggregate direct");
  Result<Table> s = TryExternalSortBy(t, keys);
  ASSERT_TRUE(s.ok()) << s.status().message();
  ExpectExactlyEqual(s.value(), s_oracle, "TryExternalSortBy direct");
}

TEST_F(SpillTest, PlanningPredicatesAreDeterministic) {
  Table t = SpillFacts(113, 4000, 100);
  std::vector<SortKey> keys = {{t.ColIndex("k"), true}};
  // Unlimited budget: nothing ever spills.
  SetExecMemoryBudget(0);
  EXPECT_FALSE(SpillJoinPlanned(t));
  EXPECT_FALSE(SpillAggPlanned(t, t.num_rows()));
  EXPECT_FALSE(SpillSortPlanned(t, keys));
  // A budget comfortably above the working state: still in memory.
  SetExecMemoryBudget(size_t{1} << 30);
  EXPECT_FALSE(SpillJoinPlanned(t));
  EXPECT_FALSE(SpillAggPlanned(t, t.num_rows()));
  EXPECT_FALSE(SpillSortPlanned(t, keys));
  // A budget below it: all three plan to spill. Empty keys never spill.
  SetExecMemoryBudget(32 << 10);
  EXPECT_TRUE(SpillJoinPlanned(t));
  EXPECT_TRUE(SpillAggPlanned(t, t.num_rows()));
  EXPECT_TRUE(SpillSortPlanned(t, keys));
  EXPECT_FALSE(SpillSortPlanned(t, {}));
}

TEST(TableTest, ReserveForwardsToColumnVectors) {
  Table t({{"k", ValueType::kInt}, {"s", ValueType::kString}});
  t.Reserve(100);
  EXPECT_EQ(t.num_rows(), 0u);
  t.AddRow({Value{int64_t{1}}, Value{std::string("a")}});
  EXPECT_GE(t.IntData(0).capacity(), 100u);
  EXPECT_GE(t.StrCodes(1).capacity(), 100u);
  EXPECT_EQ(t.num_rows(), 1u);
}

}  // namespace
}  // namespace elephant::exec
