#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "common/rng.h"

#include "exec/operators.h"
#include "exec/table.h"

namespace elephant::exec {
namespace {

Table MakeEmployees() {
  Table t({{"id", ValueType::kInt},
           {"dept", ValueType::kString},
           {"salary", ValueType::kDouble}});
  t.AddRow({Value{int64_t{1}}, Value{std::string("eng")}, Value{100.0}});
  t.AddRow({Value{int64_t{2}}, Value{std::string("eng")}, Value{200.0}});
  t.AddRow({Value{int64_t{3}}, Value{std::string("sales")}, Value{150.0}});
  t.AddRow({Value{int64_t{4}}, Value{std::string("sales")}, Value{50.0}});
  t.AddRow({Value{int64_t{5}}, Value{std::string("hr")}, Value{80.0}});
  return t;
}

Table MakeDepts() {
  Table t({{"dname", ValueType::kString}, {"budget", ValueType::kInt}});
  t.AddRow({Value{std::string("eng")}, Value{int64_t{1000}}});
  t.AddRow({Value{std::string("sales")}, Value{int64_t{500}}});
  t.AddRow({Value{std::string("legal")}, Value{int64_t{100}}});
  return t;
}

TEST(ValueTest, AccessorsAndWidening) {
  Value i{int64_t{42}};
  Value d{2.5};
  Value s{std::string("x")};
  EXPECT_EQ(AsInt(i), 42);
  EXPECT_DOUBLE_EQ(AsDouble(i), 42.0);
  EXPECT_DOUBLE_EQ(AsDouble(d), 2.5);
  EXPECT_EQ(AsInt(d), 2);
  EXPECT_EQ(AsString(s), "x");
}

TEST(ValueTest, CompareAcrossNumericTypes) {
  EXPECT_EQ(CompareValues(Value{int64_t{2}}, Value{2.0}), 0);
  EXPECT_LT(CompareValues(Value{int64_t{1}}, Value{1.5}), 0);
  EXPECT_GT(CompareValues(Value{std::string("b")}, Value{std::string("a")}),
            0);
}

TEST(ValueTest, HashStableForEqualInts) {
  EXPECT_EQ(HashValue(Value{int64_t{7}}), HashValue(Value{int64_t{7}}));
  EXPECT_NE(HashValue(Value{int64_t{7}}), HashValue(Value{int64_t{8}}));
}

TEST(TableTest, ColIndexLookup) {
  Table t = MakeEmployees();
  EXPECT_EQ(t.ColIndex("dept"), 1);
  EXPECT_EQ(t.FindCol("nope"), -1);
  EXPECT_EQ(t.num_rows(), 5u);
  EXPECT_EQ(t.num_cols(), 3);
}

TEST(FilterTest, KeepsMatchingRows) {
  Table t = MakeEmployees();
  int sal = t.ColIndex("salary");
  Table out = Filter(t, [sal](const Row& r) {
    return AsDouble(r[sal]) >= 100;
  });
  EXPECT_EQ(out.num_rows(), 3u);
  EXPECT_EQ(out.num_cols(), 3);
}

TEST(ProjectTest, ComputesExpressions) {
  Table t = MakeEmployees();
  Table out = Project(
      t, {{"id", ValueType::kInt, Col(t, "id")},
          {"double_salary", ValueType::kDouble,
           Mul(Col(t, "salary"), Lit(2.0))}});
  EXPECT_EQ(out.num_cols(), 2);
  EXPECT_DOUBLE_EQ(AsDouble(out.rows()[0][1]), 200.0);
}

TEST(HashJoinTest, InnerJoinMatches) {
  Table e = MakeEmployees();
  Table d = MakeDepts();
  Table out = HashJoinOn(e, d, {"dept"}, {"dname"});
  EXPECT_EQ(out.num_rows(), 4u);  // hr has no dept row
  EXPECT_EQ(out.num_cols(), 5);
  // Every row's dept == dname.
  int dept = out.ColIndex("dept");
  int dname = out.ColIndex("dname");
  for (const Row& r : out.rows()) {
    EXPECT_EQ(AsString(r[dept]), AsString(r[dname]));
  }
}

TEST(HashJoinTest, LeftOuterPadsUnmatched) {
  Table e = MakeEmployees();
  Table d = MakeDepts();
  Table out = HashJoinOn(e, d, {"dept"}, {"dname"}, JoinType::kLeftOuter);
  EXPECT_EQ(out.num_rows(), 5u);
  int budget = out.ColIndex("budget");
  int dept = out.ColIndex("dept");
  for (const Row& r : out.rows()) {
    if (AsString(r[dept]) == "hr") {
      EXPECT_EQ(AsInt(r[budget]), 0);  // padded default
    }
  }
}

TEST(HashJoinTest, SemiAndAnti) {
  Table e = MakeEmployees();
  Table d = MakeDepts();
  Table semi = HashJoinOn(e, d, {"dept"}, {"dname"}, JoinType::kLeftSemi);
  EXPECT_EQ(semi.num_rows(), 4u);
  EXPECT_EQ(semi.num_cols(), 3);  // left schema only
  Table anti = HashJoinOn(e, d, {"dept"}, {"dname"}, JoinType::kLeftAnti);
  EXPECT_EQ(anti.num_rows(), 1u);
  EXPECT_EQ(AsString(anti.rows()[0][1]), "hr");
}

TEST(HashJoinTest, SemiDoesNotDuplicateOnMultiMatch) {
  Table left({{"k", ValueType::kInt}});
  left.AddRow({Value{int64_t{1}}});
  Table right({{"k", ValueType::kInt}});
  right.AddRow({Value{int64_t{1}}});
  right.AddRow({Value{int64_t{1}}});
  Table semi = HashJoin(left, right, {0}, {0}, JoinType::kLeftSemi);
  EXPECT_EQ(semi.num_rows(), 1u);
  Table inner = HashJoin(left, right, {0}, {0});
  EXPECT_EQ(inner.num_rows(), 2u);
}

TEST(HashJoinTest, DuplicateColumnNamesGetSuffix) {
  Table a({{"k", ValueType::kInt}});
  a.AddRow({Value{int64_t{1}}});
  Table b({{"k", ValueType::kInt}});
  b.AddRow({Value{int64_t{1}}});
  Table out = HashJoin(a, b, {0}, {0});
  EXPECT_EQ(out.columns()[0].name, "k");
  EXPECT_EQ(out.columns()[1].name, "k_r");
}

TEST(HashJoinTest, MultiColumnKeys) {
  Table a({{"x", ValueType::kInt}, {"y", ValueType::kInt}});
  a.AddRow({Value{int64_t{1}}, Value{int64_t{2}}});
  a.AddRow({Value{int64_t{1}}, Value{int64_t{3}}});
  Table b({{"p", ValueType::kInt}, {"q", ValueType::kInt}});
  b.AddRow({Value{int64_t{1}}, Value{int64_t{2}}});
  Table out = HashJoin(a, b, {0, 1}, {0, 1});
  EXPECT_EQ(out.num_rows(), 1u);
}

TEST(HashAggregateTest, GroupsAndAggregates) {
  Table t = MakeEmployees();
  Table out = HashAggregateOn(
      t, {"dept"},
      {{AggKind::kSum, Col(t, "salary"), "total", ValueType::kDouble},
       {AggKind::kAvg, Col(t, "salary"), "avg", ValueType::kDouble},
       {AggKind::kMin, Col(t, "salary"), "min", ValueType::kDouble},
       {AggKind::kMax, Col(t, "salary"), "max", ValueType::kDouble},
       {AggKind::kCount, nullptr, "n", ValueType::kInt}});
  EXPECT_EQ(out.num_rows(), 3u);
  int dept = out.ColIndex("dept");
  for (const Row& r : out.rows()) {
    if (AsString(r[dept]) == "eng") {
      EXPECT_DOUBLE_EQ(AsDouble(r[out.ColIndex("total")]), 300.0);
      EXPECT_DOUBLE_EQ(AsDouble(r[out.ColIndex("avg")]), 150.0);
      EXPECT_DOUBLE_EQ(AsDouble(r[out.ColIndex("min")]), 100.0);
      EXPECT_DOUBLE_EQ(AsDouble(r[out.ColIndex("max")]), 200.0);
      EXPECT_EQ(AsInt(r[out.ColIndex("n")]), 2);
    }
  }
}

TEST(HashAggregateTest, GlobalAggregateOverEmptyInput) {
  Table t({{"x", ValueType::kDouble}});
  Table out = HashAggregate(
      t, {}, {{AggKind::kSum, [](const Row&) { return Value{1.0}; }, "s",
               ValueType::kDouble}});
  ASSERT_EQ(out.num_rows(), 1u);
  EXPECT_DOUBLE_EQ(AsDouble(out.rows()[0][0]), 0.0);
}

TEST(HashAggregateTest, CountDistinct) {
  Table t = MakeEmployees();
  Table out = HashAggregateOn(
      t, {}, {{AggKind::kCountDistinct, Col(t, "dept"), "depts",
               ValueType::kInt}});
  EXPECT_EQ(AsInt(out.rows()[0][0]), 3);
}

TEST(HashAggregateTest, CountDistinctPerGroup) {
  // Pins exact per-group cardinalities: heavy duplication in one group,
  // all-unique in another, a singleton in a third.
  Table t({{"g", ValueType::kString}, {"v", ValueType::kInt}});
  for (int64_t i = 0; i < 12; ++i) {
    t.AddRow({Value{std::string("dup")}, Value{i % 3}});
  }
  for (int64_t i = 0; i < 5; ++i) {
    t.AddRow({Value{std::string("uniq")}, Value{100 + i}});
  }
  t.AddRow({Value{std::string("one")}, Value{int64_t{7}}});
  Table out = HashAggregateOn(
      t, {"g"},
      {{AggKind::kCountDistinct, Col(t, "v"), "nv", ValueType::kInt},
       {AggKind::kCount, nullptr, "n", ValueType::kInt}});
  ASSERT_EQ(out.num_rows(), 3u);
  int g = out.ColIndex("g");
  int nv = out.ColIndex("nv");
  int n = out.ColIndex("n");
  for (const Row& r : out.rows()) {
    if (AsString(r[g]) == "dup") {
      EXPECT_EQ(AsInt(r[nv]), 3);
      EXPECT_EQ(AsInt(r[n]), 12);
    } else if (AsString(r[g]) == "uniq") {
      EXPECT_EQ(AsInt(r[nv]), 5);
      EXPECT_EQ(AsInt(r[n]), 5);
    } else {
      EXPECT_EQ(AsString(r[g]), "one");
      EXPECT_EQ(AsInt(r[nv]), 1);
      EXPECT_EQ(AsInt(r[n]), 1);
    }
  }
}

TEST(HashAggregateTest, CountDistinctDoesNotCollideAcrossTypes) {
  // int 1, double 1.0, and string "1" serialize with distinct type tags
  // and must count as three different values.
  Table t({{"v", ValueType::kInt}});
  t.AddRow({Value{int64_t{1}}});
  t.AddRow({Value{1.0}});
  t.AddRow({Value{std::string("1")}});
  t.AddRow({Value{int64_t{1}}});  // duplicate of the first row
  Table out = HashAggregateOn(
      t, {}, {{AggKind::kCountDistinct, Col(t, "v"), "nv", ValueType::kInt}});
  EXPECT_EQ(AsInt(out.rows()[0][0]), 3);
}

TEST(SortTest, MultiKeyWithDirections) {
  Table t = MakeEmployees();
  Table out = SortBy(t, {{t.ColIndex("dept"), true},
                         {t.ColIndex("salary"), false}});
  // eng 200, eng 100, hr 80, sales 150, sales 50.
  EXPECT_DOUBLE_EQ(AsDouble(out.rows()[0][2]), 200.0);
  EXPECT_DOUBLE_EQ(AsDouble(out.rows()[1][2]), 100.0);
  EXPECT_EQ(AsString(out.rows()[2][1]), "hr");
  EXPECT_DOUBLE_EQ(AsDouble(out.rows()[3][2]), 150.0);
}

TEST(SortTest, StableForEqualKeys) {
  Table t({{"k", ValueType::kInt}, {"seq", ValueType::kInt}});
  for (int64_t i = 0; i < 10; ++i) {
    t.AddRow({Value{int64_t{1}}, Value{i}});
  }
  Table out = SortBy(t, {{0, true}});
  for (int64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(AsInt(out.rows()[i][1]), i);
  }
}

TEST(LimitTest, TruncatesAndHandlesShortInput) {
  Table t = MakeEmployees();
  EXPECT_EQ(Limit(t, 2).num_rows(), 2u);
  EXPECT_EQ(Limit(t, 100).num_rows(), 5u);
}

TEST(DistinctTest, RemovesDuplicates) {
  Table t({{"x", ValueType::kInt}});
  t.AddRow({Value{int64_t{1}}});
  t.AddRow({Value{int64_t{2}}});
  t.AddRow({Value{int64_t{1}}});
  Table out = Distinct(t);
  EXPECT_EQ(out.num_rows(), 2u);
}

TEST(ExprTest, Arithmetic) {
  Table t = MakeEmployees();
  Expr e = Add(Mul(Col(t, "salary"), Lit(2.0)), Lit(1.0));
  EXPECT_DOUBLE_EQ(AsDouble(e(t.rows()[0])), 201.0);
  Expr s = Sub(Col(t, "salary"), Lit(50.0));
  EXPECT_DOUBLE_EQ(AsDouble(s(t.rows()[0])), 50.0);
}

TEST(SortMergeJoinTest, MatchesHashJoinOnFixture) {
  Table e = MakeEmployees();
  Table d = MakeDepts();
  Table smj = SortMergeJoin(e, d, e.ColIndex("dept"), d.ColIndex("dname"));
  Table hj = HashJoinOn(e, d, {"dept"}, {"dname"});
  EXPECT_EQ(smj.num_rows(), hj.num_rows());
  EXPECT_EQ(smj.num_cols(), hj.num_cols());
}

TEST(SortMergeJoinTest, DuplicateRunsCrossProduct) {
  Table a({{"k", ValueType::kInt}});
  Table b({{"k", ValueType::kInt}});
  for (int i = 0; i < 3; ++i) a.AddRow({Value{int64_t{7}}});
  for (int i = 0; i < 2; ++i) b.AddRow({Value{int64_t{7}}});
  EXPECT_EQ(SortMergeJoin(a, b, 0, 0).num_rows(), 6u);
}

TEST(NestedLoopJoinTest, SupportsNonEquiPredicates) {
  Table e = MakeEmployees();
  Table d = MakeDepts();
  // Band join: salary exceeds the department budget (columns: id, dept,
  // salary, dname, budget).
  Table out = NestedLoopJoin(e, d, [&](const Row& r) {
    return AsDouble(r[2]) > AsDouble(r[4]);
  });
  for (const Row& r : out.rows()) {
    EXPECT_GT(AsDouble(r[2]), AsDouble(r[4]));
  }
  EXPECT_GT(out.num_rows(), 0u);
}

// Property: on random inputs, all three inner-join implementations
// produce identical result multisets.
class JoinEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(JoinEquivalenceTest, AllJoinsAgree) {
  elephant::Rng rng(GetParam());
  Table left({{"k", ValueType::kInt}, {"lv", ValueType::kInt}});
  Table right({{"k", ValueType::kInt}, {"rv", ValueType::kInt}});
  for (int i = 0; i < 200; ++i) {
    left.AddRow({Value{static_cast<int64_t>(rng.Uniform(40))},
                 Value{static_cast<int64_t>(i)}});
  }
  for (int i = 0; i < 150; ++i) {
    right.AddRow({Value{static_cast<int64_t>(rng.Uniform(40))},
                  Value{static_cast<int64_t>(i)}});
  }
  Table hj = HashJoin(left, right, {0}, {0});
  Table smj = SortMergeJoin(left, right, 0, 0);
  Table nlj = NestedLoopJoin(left, right, [](const Row& r) {
    return CompareValues(r[0], r[2]) == 0;
  });
  ASSERT_EQ(hj.num_rows(), smj.num_rows());
  ASSERT_EQ(hj.num_rows(), nlj.num_rows());
  // Compare as sorted multisets of (k, lv, rv).
  auto signature = [](const Table& t) {
    std::vector<std::tuple<int64_t, int64_t, int64_t>> sig;
    for (const Row& r : t.rows()) {
      sig.emplace_back(AsInt(r[0]), AsInt(r[1]), AsInt(r[3]));
    }
    std::sort(sig.begin(), sig.end());
    return sig;
  };
  EXPECT_EQ(signature(hj), signature(smj));
  EXPECT_EQ(signature(hj), signature(nlj));
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, JoinEquivalenceTest,
                         ::testing::Values(1, 17, 99, 4242));

TEST(TableTest, ToStringShowsHeaderAndRows) {
  Table t = MakeDepts();
  std::string s = t.ToString(2);
  EXPECT_NE(s.find("dname"), std::string::npos);
  EXPECT_NE(s.find("eng"), std::string::npos);
  EXPECT_NE(s.find("3 rows total"), std::string::npos);
}

}  // namespace
}  // namespace elephant::exec
