// Saturation-sweep harness tests: the open-loop curve has a sane
// shape and a detected knee for every system, the whole sweep is
// bit-identical at any host thread count and replayable from
// ELEPHANT_SWEEP_SEED, the admission gate bounds the in-flight
// population and sheds under overload, and a fault plan armed over a
// mid-curve step degrades the tail without deadlock or fingerprint
// drift.

#include <gtest/gtest.h>

#include <cstdlib>

#include "common/task_pool.h"
#include "sim/fault.h"
#include "ycsb/sweep.h"

namespace elephant::ycsb {
namespace {

SweepOptions TinySweep() {
  SweepOptions o;
  o.driver.record_count = 40000;
  o.driver.warmup = kSecond;
  o.driver.measure = 2 * kSecond;
  o.offered_rates = {1000, 8000, 64000};
  o.arrival_streams = 16;
  return o;
}

// Every measured arrival ends exactly one way: completed, shed at the
// gate, or failed. The drain guarantees all of them are accounted.
void ExpectArrivalsAccounted(const SweepStepResult& step) {
  EXPECT_EQ(step.completed + step.shed + step.failed, step.arrivals);
}

TEST(SweepTest, CurveShapeAndKneePerSystem) {
  for (SystemKind kind :
       {SystemKind::kSqlCs, SystemKind::kMongoCs, SystemKind::kMongoAs}) {
    SweepOptions options = TinySweep();
    SweepCurve curve = RunSaturationSweep(kind, options);
    ASSERT_EQ(curve.steps.size(), options.offered_rates.size())
        << curve.system;
    for (size_t i = 0; i < curve.steps.size(); ++i) {
      const SweepStepResult& step = curve.steps[i];
      EXPECT_GT(step.arrivals, 0) << curve.system << " step " << i;
      ExpectArrivalsAccounted(step);
      // Percentiles are monotone in p at every step.
      EXPECT_LE(step.p50_us, step.p95_us) << curve.system << " step " << i;
      EXPECT_LE(step.p95_us, step.p99_us) << curve.system << " step " << i;
      EXPECT_LE(step.p99_us, step.p999_us) << curve.system << " step " << i;
      EXPECT_GE(step.util.cpu, 0.0);
      EXPECT_GE(step.util.disk, 0.0);
      if (i > 0) {
        // Offered load only rises across the sweep; utilization must
        // not fall (tiny tolerance: shed ops do no engine work).
        EXPECT_GE(curve.steps[i].util.disk,
                  curve.steps[i - 1].util.disk - 0.05)
            << curve.system << " step " << i;
      }
    }
    // The idle step keeps up with its offered rate...
    EXPECT_GT(curve.steps[0].completed, 0) << curve.system;
    EXPECT_GE(curve.steps[0].achieved_rate,
              0.5 * curve.steps[0].offered_rate)
        << curve.system;
    EXPECT_GT(curve.steps[0].p99_us, 0) << curve.system;
    // ...and the top rate is far past what 8 nodes can absorb, so a
    // knee must exist and sit above the idle floor.
    EXPECT_GE(curve.knee_step, 1) << curve.system;
    EXPECT_GT(curve.knee_offered_rate, curve.steps[0].offered_rate)
        << curve.system;
    EXPECT_GT(curve.p99_at_knee_ms, 0) << curve.system;
  }
}

TEST(SweepTest, BitIdenticalAcrossHostThreadCounts) {
  SweepOptions options = TinySweep();
  options.parallelism = 1;
  SweepCurve serial = RunSaturationSweep(SystemKind::kSqlCs, options);
  TaskPool::Global(8);  // grow the shared pool to 8 workers
  options.parallelism = 8;
  SweepCurve parallel = RunSaturationSweep(SystemKind::kSqlCs, options);
  EXPECT_EQ(serial.Fingerprint(), parallel.Fingerprint());
  EXPECT_EQ(serial.knee_step, parallel.knee_step);
  ASSERT_EQ(serial.steps.size(), parallel.steps.size());
  for (size_t i = 0; i < serial.steps.size(); ++i) {
    EXPECT_EQ(serial.steps[i].Fingerprint(), parallel.steps[i].Fingerprint())
        << "step " << i;
  }
}

TEST(SweepTest, MongoSweepIsDeterministic) {
  SweepOptions options = TinySweep();
  options.offered_rates = {1000, 32000};
  Status st = VerifySweepDeterminism(SystemKind::kMongoAs, options);
  EXPECT_TRUE(st.ok()) << st.ToString();
}

TEST(SweepTest, SeedChangesTheScheduleAndReplaysExactly) {
  SweepOptions options = TinySweep();
  SweepStepResult first = RunSweepStep(SystemKind::kSqlCs, 8000, options);
  SweepStepResult replay = RunSweepStep(SystemKind::kSqlCs, 8000, options);
  EXPECT_EQ(first.Fingerprint(), replay.Fingerprint());
  options.driver.seed ^= 0x12345;
  SweepStepResult reseeded = RunSweepStep(SystemKind::kSqlCs, 8000, options);
  EXPECT_NE(reseeded.Fingerprint(), first.Fingerprint());
  ExpectArrivalsAccounted(reseeded);
}

TEST(SweepTest, SweepSeedFromEnvParsesAndFallsBack) {
  setenv("ELEPHANT_SWEEP_SEED", "0xABCDE", 1);
  EXPECT_EQ(SweepSeedFromEnv(7), 0xABCDEu);
  setenv("ELEPHANT_SWEEP_SEED", "12345", 1);
  EXPECT_EQ(SweepSeedFromEnv(7), 12345u);
  setenv("ELEPHANT_SWEEP_SEED", "", 1);
  EXPECT_EQ(SweepSeedFromEnv(7), 7u);
  unsetenv("ELEPHANT_SWEEP_SEED");
  EXPECT_EQ(SweepSeedFromEnv(7), 7u);
}

TEST(SweepTest, AdmissionGateBoundsInflightAndSheds) {
  SweepOptions options = TinySweep();
  options.gate.max_inflight = 32;
  options.gate.max_queued = 32;
  SweepStepResult step = RunSweepStep(SystemKind::kMongoCs, 64000, options);
  ExpectArrivalsAccounted(step);
  EXPECT_GT(step.shed, 0);
  EXPECT_LE(step.peak_inflight, options.gate.max_inflight);
  EXPECT_LE(step.peak_queued, options.gate.max_queued);
  EXPECT_GT(step.completed, 0);  // admitted work still completes
  EXPECT_GT(step.queue_wait_ms, 0.0);
}

TEST(SweepTest, ChaosStepDegradesWithoutDeadlockOrDrift) {
  SweepOptions options = TinySweep();
  SweepStepResult clean = RunSweepStep(SystemKind::kSqlCs, 8000, options);

  // A mid-window disk stall plus a NIC outage: the tail must absorb
  // the stall and blocked ops must fail, while the drain still reaches
  // quiescence (RunSweepStep asserts that internally).
  sim::FaultPlan plan;
  plan.seed = 0xFA117;
  SimTime warmup = options.driver.warmup;
  plan.events.push_back({sim::FaultKind::kDiskStall,
                         warmup + 200 * kMillisecond, 500 * kMillisecond,
                         /*node=*/0, /*peer=*/0, /*count=*/0});
  plan.events.push_back({sim::FaultKind::kNicOutage,
                         warmup + 400 * kMillisecond, 300 * kMillisecond,
                         /*node=*/2, /*peer=*/0, /*count=*/0});
  SweepStepResult faulted =
      RunSweepStep(SystemKind::kSqlCs, 8000, options, &plan);
  SweepStepResult replay =
      RunSweepStep(SystemKind::kSqlCs, 8000, options, &plan);

  // Seed-replay contract: bit-identical under the same plan.
  EXPECT_EQ(faulted.Fingerprint(), replay.Fingerprint());
  ExpectArrivalsAccounted(faulted);
  // The outage fails blocked ops; the stall stretches the tail.
  EXPECT_GT(faulted.failed, clean.failed);
  EXPECT_GE(faulted.p999_us, clean.p999_us);
  // And the fault plan must actually have changed the run.
  EXPECT_NE(faulted.Fingerprint(), clean.Fingerprint());
}

}  // namespace
}  // namespace elephant::ycsb
