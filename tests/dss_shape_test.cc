// End-to-end shape tests for the DSS comparison: the paper's qualitative
// findings must hold in the model even where absolute numbers differ.

#include <gtest/gtest.h>

#include "tpch/dss_benchmark.h"
#include "tpch/paper_reference.h"
#include "tpch/queries.h"

namespace elephant::tpch {
namespace {

class DssShapeTest : public ::testing::Test {
 protected:
  static const std::vector<DssQueryRow>& Rows() {
    static const std::vector<DssQueryRow>* rows = [] {
      static DssBenchmark bench;
      return new std::vector<DssQueryRow>(
          bench.RunAll(kPaperScaleFactors));
    }();
    return *rows;
  }
};

// "PDW is always faster than Hive for all TPC-H queries and at all
// scale factors" (§3.3.4.1).
TEST_F(DssShapeTest, PdwBeatsHiveEverywhere) {
  for (const auto& row : Rows()) {
    for (size_t i = 0; i < kPaperScaleFactors.size(); ++i) {
      if (row.hive_failed[i]) continue;
      EXPECT_GT(row.hive_seconds[i], row.pdw_seconds[i])
          << "Q" << row.query << " at SF " << kPaperScaleFactors[i];
    }
  }
}

// "The average speedup of PDW over Hive is greater for small datasets"
// (§3.3.4.1): the mean per-query speedup narrows monotonically with SF.
TEST_F(DssShapeTest, SpeedupNarrowsWithScale) {
  std::vector<double> mean_speedup;
  for (size_t i = 0; i < kPaperScaleFactors.size(); ++i) {
    double sum = 0;
    int n = 0;
    for (const auto& row : Rows()) {
      if (row.hive_failed[i]) continue;
      sum += row.Speedup(i);
      n++;
    }
    mean_speedup.push_back(sum / n);
  }
  for (size_t i = 1; i < mean_speedup.size(); ++i) {
    EXPECT_LT(mean_speedup[i], mean_speedup[i - 1]);
  }
  // Magnitudes: >15x at SF 250 shrinking into single digits at 16 TB.
  EXPECT_GT(mean_speedup.front(), 15.0);
  EXPECT_LT(mean_speedup.back(), 12.0);
}

// "Hive scales better than PDW" (§3.3.4.3): summed over queries, the
// 250 -> 1000 growth factor is lower for Hive.
TEST_F(DssShapeTest, HiveScalesBetterAtTheSmallEnd) {
  double hive_factor = 0, pdw_factor = 0;
  int n = 0;
  for (const auto& row : Rows()) {
    hive_factor += row.hive_seconds[1] / row.hive_seconds[0];
    pdw_factor += row.pdw_seconds[1] / row.pdw_seconds[0];
    n++;
  }
  EXPECT_LT(hive_factor / n, pdw_factor / n);
  // And Hive's average factor is clearly sub-linear (paper: ~5.1 for
  // PDW-like linearity would be 4.0; Hive averages ~2-3 here).
  EXPECT_LT(hive_factor / n, 3.5);
}

// Q9 completes everywhere except Hive at 16 TB (Table 3's "--").
TEST_F(DssShapeTest, OnlyQ9FailsAndOnlyAt16Tb) {
  for (const auto& row : Rows()) {
    for (size_t i = 0; i < kPaperScaleFactors.size(); ++i) {
      bool should_fail = row.query == 9 && kPaperScaleFactors[i] == 16000;
      EXPECT_EQ(row.hive_failed[i], should_fail)
          << "Q" << row.query << " at SF " << kPaperScaleFactors[i];
    }
  }
}

// Figure 1's normalized means grow monotonically with SF and Hive's
// curve sits far above PDW's.
TEST_F(DssShapeTest, Figure1CurvesAreOrdered) {
  auto hive = DssBenchmark::SummarizeHive(Rows());
  auto pdw = DssBenchmark::SummarizePdw(Rows());
  for (size_t i = 1; i < kPaperScaleFactors.size(); ++i) {
    EXPECT_GT(hive.am9[i], hive.am9[i - 1]);
    EXPECT_GT(pdw.am9[i], pdw.am9[i - 1]);
    EXPECT_GT(hive.gm9[i], hive.gm9[i - 1]);
  }
  for (size_t i = 0; i < kPaperScaleFactors.size(); ++i) {
    EXPECT_GT(hive.am9[i], pdw.am9[i]);
  }
}

// Per-query absolute sanity: model within ~3x of every paper
// measurement (both engines, all scale factors).
TEST_F(DssShapeTest, WithinThreeXOfPaperMeasurements) {
  constexpr double kFactor = 3.0;
  for (const auto& row : Rows()) {
    for (size_t i = 0; i < kPaperScaleFactors.size(); ++i) {
      double paper_h = PaperReference::kHiveSeconds[row.query - 1][i];
      double paper_p = PaperReference::kPdwSeconds[row.query - 1][i];
      if (paper_h > 0 && !row.hive_failed[i]) {
        EXPECT_LT(row.hive_seconds[i], paper_h * kFactor)
            << "Hive Q" << row.query << " SF " << kPaperScaleFactors[i];
        EXPECT_GT(row.hive_seconds[i], paper_h / kFactor)
            << "Hive Q" << row.query << " SF " << kPaperScaleFactors[i];
      }
      if (paper_p > 0) {
        EXPECT_LT(row.pdw_seconds[i], paper_p * kFactor)
            << "PDW Q" << row.query << " SF " << kPaperScaleFactors[i];
        EXPECT_GT(row.pdw_seconds[i], paper_p / kFactor)
            << "PDW Q" << row.query << " SF " << kPaperScaleFactors[i];
      }
    }
  }
}

// The headline conclusion: "the parallel database system (PDW) was
// approximately 9X faster than ... Hive when running TPC-H at a 16TB
// scale" (§3.5).
TEST_F(DssShapeTest, HeadlineNineXAt16Tb) {
  double sum = 0;
  int n = 0;
  for (const auto& row : Rows()) {
    if (row.hive_failed[3]) continue;
    sum += row.Speedup(3);
    n++;
  }
  EXPECT_NEAR(sum / n, 9.0, 3.5);
}

}  // namespace
}  // namespace elephant::tpch
