#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "dfs/dfs.h"
#include "sim/simulation.h"

namespace elephant::dfs {
namespace {

class DfsTest : public ::testing::Test {
 protected:
  DfsTest()
      : cluster_(&sim_, 16, cluster::NodeConfig{}),
        fs_(&cluster_, DfsOptions{}) {}

  sim::Simulation sim_;
  cluster::Cluster cluster_;
  DistributedFileSystem fs_;
};

TEST_F(DfsTest, DefaultsMatchPaperConfig) {
  EXPECT_EQ(fs_.options().block_size, 256 * kMB);
  EXPECT_EQ(fs_.options().replication, 3);
}

TEST_F(DfsTest, FileSplitsIntoBlocks) {
  ASSERT_TRUE(fs_.CreateFile("/t/lineitem", 1000 * kMB).ok());
  auto file = fs_.GetFile("/t/lineitem");
  ASSERT_TRUE(file.ok());
  EXPECT_EQ(file.value().blocks.size(), 4u);  // 256+256+256+232
  int64_t total = 0;
  for (const auto& b : file.value().blocks) {
    total += b.bytes;
    EXPECT_LE(b.bytes, 256 * kMB);
    EXPECT_GE(b.replicas.size(), 1u);
    EXPECT_LE(b.replicas.size(), 3u);
  }
  EXPECT_EQ(total, 1000 * kMB);
}

TEST_F(DfsTest, EmptyFileStillHasOneSplit) {
  // Empty bucket files still generate one map task each (§3.3.4.2).
  ASSERT_TRUE(fs_.CreateFile("/t/empty_bucket", 0).ok());
  auto splits = fs_.Splits("/t/empty_bucket");
  ASSERT_EQ(splits.size(), 1u);
  EXPECT_EQ(splits[0].bytes, 0);
}

TEST_F(DfsTest, DuplicateCreateFails) {
  ASSERT_TRUE(fs_.CreateFile("/x", kMB).ok());
  EXPECT_EQ(fs_.CreateFile("/x", kMB).code(), StatusCode::kAlreadyExists);
}

TEST_F(DfsTest, DeleteReleasesSpace) {
  ASSERT_TRUE(fs_.CreateFile("/x", 10 * kMB).ok());
  EXPECT_EQ(fs_.TotalBytes(), 10 * kMB);
  EXPECT_EQ(fs_.used_capacity_bytes(), 30 * kMB);  // 3x replication
  ASSERT_TRUE(fs_.DeleteFile("/x").ok());
  EXPECT_EQ(fs_.TotalBytes(), 0);
  EXPECT_TRUE(fs_.DeleteFile("/x").IsNotFound());
}

TEST_F(DfsTest, DistributedFilesOnePerNode) {
  ASSERT_TRUE(fs_.CreateDistributedFiles("/gen/lineitem", 100 * kMB).ok());
  EXPECT_EQ(fs_.TotalBytes(), 16 * 100 * kMB);
  EXPECT_TRUE(fs_.Exists("/gen/lineitem.part000"));
  EXPECT_TRUE(fs_.Exists("/gen/lineitem.part015"));
}

TEST_F(DfsTest, ParallelWriteChargesReplication) {
  // 16 GB over 16 nodes: each node writes 3 GB to disk (3 copies) and
  // sends 2 GB over its NIC. NIC: 2 GB * 8 / 1e9 = 16 s (the bound).
  SimTime t = fs_.ParallelWriteTime(16LL * 1000000000);
  EXPECT_NEAR(SimTimeToSeconds(t), 16.0, 0.5);
}

TEST_F(DfsTest, ParallelReadUsesAggregateDiskBandwidth) {
  // 16 GB over 16 nodes at 8 disks x 100 MB/s each: 1 GB per node at
  // 800 MB/s = 1.25 s.
  SimTime t = fs_.ParallelReadTime(16LL * 1000000000);
  EXPECT_NEAR(SimTimeToSeconds(t), 1.25, 0.05);
}

}  // namespace
}  // namespace elephant::dfs
