// Virtual-time lockset race detector (sim/lockset.h): the planted
// race must trip it, clean engines must not, and arming it must leave
// every modeled result bit-identical — the checker is bookkeeping,
// never simulation.

#include "sim/lockset.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "cluster/cluster.h"
#include "docstore/mongod.h"
#include "sim/fault.h"
#include "sim/simulation.h"
#include "sqlkv/engine.h"
#include "ycsb/driver.h"
#include "ycsb/systems.h"
#include "ycsb/workload.h"

namespace elephant {
namespace {

using sim::LocksetChecker;
using Mode = LocksetChecker::Mode;
using Access = LocksetChecker::Access;

// RAII guard for the ELEPHANT_LOCKSET_CHECK environment knob: the
// fingerprint tests construct their Simulations deep inside
// RunOnePoint/RunChaosPoint, so the env var is the only way in.
class ScopedLocksetEnv {
 public:
  explicit ScopedLocksetEnv(const char* value) {
    const char* old = std::getenv("ELEPHANT_LOCKSET_CHECK");
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    setenv("ELEPHANT_LOCKSET_CHECK", value, 1);
  }
  ~ScopedLocksetEnv() {
    if (had_old_) {
      setenv("ELEPHANT_LOCKSET_CHECK", old_.c_str(), 1);
    } else {
      unsetenv("ELEPHANT_LOCKSET_CHECK");
    }
  }

 private:
  bool had_old_;
  std::string old_;
};

class LocksetSqlTest : public ::testing::Test {
 protected:
  LocksetSqlTest() : node_(&sim_, 0, cluster::NodeConfig{}) {}

  sim::Simulation sim_;
  cluster::Node node_;
};

TEST(LocksetDefaultTest, OffByDefaultChecksNothing) {
  // Neutralize the env knob first: this test asserts the no-env
  // default, and CI runs the whole binary with ELEPHANT_LOCKSET_CHECK=1
  // (the Simulation must be constructed under the scoped "0").
  ScopedLocksetEnv env("0");
  sim::Simulation sim;
  cluster::Node node(&sim, 0, cluster::NodeConfig{});
  ASSERT_FALSE(sim.lockset_checker().enabled());
  sqlkv::SqlEngine engine(&sim, &node, {});
  ASSERT_TRUE(engine.LoadRecord(1, 1024).ok());
  sqlkv::OpOutcome out;
  sim::Latch done(&sim, 1);
  engine.Read(1, &out, &done);
  sim.Run();
  EXPECT_TRUE(out.ok);
  EXPECT_EQ(sim.lockset_checker().accesses_checked(), 0);
  EXPECT_EQ(sim.lockset_checker().total_violations(), 0);
}

TEST_F(LocksetSqlTest, CleanEngineOpsProduceNoViolations) {
  sim_.lockset_checker().set_enabled(true);
  sqlkv::SqlEngine engine(&sim_, &node_, {});
  for (uint64_t k = 0; k < 100; ++k) {
    ASSERT_TRUE(engine.LoadRecord(k, 1024).ok());
  }
  sqlkv::OpOutcome out[3];
  sim::Latch done(&sim_, 3);
  engine.Read(5, &out[0], &done);
  engine.Update(6, 100, &out[1], &done);
  engine.Insert(200, 1024, &out[2], &done);
  sim_.Run();
  EXPECT_TRUE(out[0].ok && out[1].ok && out[2].ok);
  // The instrumentation must actually be live, and clean.
  EXPECT_GE(sim_.lockset_checker().accesses_checked(), 3);
  EXPECT_EQ(sim_.lockset_checker().total_violations(), 0);
  EXPECT_EQ(sim_.lockset_checker().Report(), "");
}

TEST_F(LocksetSqlTest, PlantedRaceTripsChecker) {
  sim_.lockset_checker().set_enabled(true);
  sqlkv::SqlEngine engine(&sim_, &node_, {});
  ASSERT_TRUE(engine.LoadRecord(42, 1024).ok());

  // Skip exactly one shared acquisition: the very bug class the
  // checker exists for — invisible to TSan (the lock is modeled) and
  // to the runtime validators (no lock entry leaks).
  engine.TestSkipNextReadLock();
  sqlkv::OpOutcome out;
  sim::Latch done(&sim_, 1);
  engine.Read(42, &out, &done);
  sim_.Run();
  EXPECT_TRUE(out.ok);  // the read still "works" — that is the danger

  const LocksetChecker& checker = sim_.lockset_checker();
  ASSERT_EQ(checker.total_violations(), 1);
  ASSERT_EQ(checker.violations().size(), 1u);
  const LocksetChecker::Violation& v = checker.violations()[0];
  EXPECT_STREQ(v.op, "sqlkv.read");
  EXPECT_EQ(v.data_key, 42u);
  EXPECT_EQ(v.access, Access::kRead);
  EXPECT_EQ(v.required, Mode::kShared);
  EXPECT_EQ(v.held, Mode::kNone);
  // The report names the op, the key, and the missing mode.
  std::string report = checker.Report();
  EXPECT_NE(report.find("sqlkv.read"), std::string::npos);
  EXPECT_NE(report.find("key=42"), std::string::npos);
  EXPECT_NE(report.find("shared"), std::string::npos);

  // With the lock restored, the same access is clean again.
  sim::Latch done2(&sim_, 1);
  sqlkv::OpOutcome out2;
  engine.Read(42, &out2, &done2);
  sim_.Run();
  EXPECT_TRUE(out2.ok);
  EXPECT_EQ(checker.total_violations(), 1);  // no new violation
}

TEST_F(LocksetSqlTest, ReadUncommittedIsLegitimatelyLockFree) {
  sim_.lockset_checker().set_enabled(true);
  sqlkv::SqlEngineOptions opt;
  opt.read_uncommitted = true;
  sqlkv::SqlEngine engine(&sim_, &node_, opt);
  ASSERT_TRUE(engine.LoadRecord(7, 1024).ok());
  sqlkv::OpOutcome out;
  sim::Latch done(&sim_, 1);
  engine.Read(7, &out, &done);
  sim_.Run();
  EXPECT_TRUE(out.ok);
  // The access is checked, and the kNone mandate makes it clean.
  EXPECT_GE(sim_.lockset_checker().accesses_checked(), 1);
  EXPECT_EQ(sim_.lockset_checker().total_violations(), 0);
}

TEST(LocksetMongodTest, CleanOpsUnderGlobalLock) {
  sim::Simulation sim;
  sim.lockset_checker().set_enabled(true);
  cluster::Node node(&sim, 0, cluster::NodeConfig{});
  docstore::Mongod mongod(&sim, &node, {}, "shard0");
  for (uint64_t k = 0; k < 100; ++k) {
    ASSERT_TRUE(mongod.LoadDocument(k, 1024).ok());
  }
  sqlkv::OpOutcome out[4];
  sim::Latch done(&sim, 4);
  mongod.Read(1, &out[0], &done);
  mongod.Update(2, 100, &out[1], &done);
  mongod.Insert(500, 1024, &out[2], &done);
  mongod.Scan(10, 5, &out[3], &done);
  sim.Run();
  EXPECT_TRUE(out[0].ok && out[1].ok && out[2].ok && out[3].ok);
  EXPECT_GE(sim.lockset_checker().accesses_checked(), 4);
  EXPECT_EQ(sim.lockset_checker().total_violations(), 0)
      << sim.lockset_checker().Report();
}

TEST(LocksetMongodTest, YieldOnFaultReacquiresCleanly) {
  sim::Simulation sim;
  sim.lockset_checker().set_enabled(true);
  cluster::Node node(&sim, 0, cluster::NodeConfig{});
  docstore::MongodOptions opt;
  opt.yield_on_fault = true;
  docstore::Mongod mongod(&sim, &node, opt, "shard0");
  for (uint64_t k = 0; k < 100; ++k) {
    ASSERT_TRUE(mongod.LoadDocument(k, 1024).ok());
  }
  sqlkv::OpOutcome out[2];
  sim::Latch done(&sim, 2);
  mongod.Read(1, &out[0], &done);
  mongod.Update(2, 100, &out[1], &done);
  sim.Run();
  EXPECT_TRUE(out[0].ok && out[1].ok);
  EXPECT_EQ(sim.lockset_checker().total_violations(), 0)
      << sim.lockset_checker().Report();
}

// Regression pin for the migration fix: the balancer used to mutate
// both collections with no lock at all while loaders were in flight.
// Under the checker, a full Mongo-AS timed load (no pre-split, so the
// balancer runs) must be violation-free.
TEST(LocksetBalancerTest, TimedLoadMigrationsHoldGlobalLocks) {
  ScopedLocksetEnv env("1");
  ycsb::OltpTestbed testbed;
  ASSERT_TRUE(testbed.sim.lockset_checker().enabled());
  ycsb::MongoAsSystem::Options opt;
  opt.mongod.memory_bytes = 4 * kMB;
  opt.config.max_chunk_bytes = 64 * 1024;  // force splits + migrations
  ycsb::MongoAsSystem system(&testbed, opt);
  ycsb::DriverOptions dopt;
  dopt.record_count = 4000;
  ycsb::YcsbDriver driver(&testbed, &system, ycsb::WorkloadSpec::C(), dopt);
  driver.SimulateTimedLoad(32);
  // One more explicit balancer round after the load drains, so the
  // migration path is exercised even if the load finished between
  // balancing ticks.
  sim::Latch balanced(&testbed.sim, 1);
  system.RunBalancerOnce(&balanced);
  // Bounded drain: the background flushers tick forever, so an
  // unbounded Run() would never return.
  while (balanced.count() > 0) {
    testbed.sim.Run(testbed.sim.now() + kSecond);
  }
  const LocksetChecker& checker = testbed.sim.lockset_checker();
  // The load inserts through the mongods and the balancer migrates
  // chunks: both paths must have been checked, cleanly.
  EXPECT_GT(checker.accesses_checked(), 4000);
  EXPECT_EQ(checker.total_violations(), 0) << checker.Report();
  // Migrations demonstrably happened: without them every document
  // would still sit on the initial chunk's shard (splits alone move
  // no data).
  int shards_with_docs = 0;
  for (int i = 0; i < system.num_shards(); ++i) {
    if (system.mongod(i).docs() > 0) shards_with_docs++;
  }
  EXPECT_GT(shards_with_docs, 1) << "balancer never migrated a chunk";
}

// The determinism contract: arming the checker changes no modeled
// result — fingerprints are bit-identical with it on and off.
TEST(LocksetFingerprintTest, ModeledCellUnchangedByChecker) {
  ycsb::DriverOptions opt;
  opt.record_count = 20000;
  opt.warmup = 500 * kMillisecond;
  opt.measure = 2 * kSecond;
  ycsb::RunResult off = ycsb::RunOnePoint(
      ycsb::SystemKind::kSqlCs, ycsb::WorkloadSpec::A(), 4000, opt);
  uint64_t on_fp = 0;
  {
    ScopedLocksetEnv env("1");
    ycsb::RunResult on = ycsb::RunOnePoint(
        ycsb::SystemKind::kSqlCs, ycsb::WorkloadSpec::A(), 4000, opt);
    on_fp = on.Fingerprint();
  }
  EXPECT_EQ(off.Fingerprint(), on_fp);
}

TEST(LocksetFingerprintTest, ChaosSeedUnchangedByChecker) {
  ycsb::DriverOptions opt;
  opt.record_count = 20000;
  opt.warmup = 500 * kMillisecond;
  opt.measure = 2 * kSecond;
  opt.retry.max_retries = 4;
  opt.retry.op_timeout = 1 * kSecond;
  sim::FaultPlanOptions popt;
  popt.horizon_start = 200 * kMillisecond;
  popt.horizon = 2 * kSecond;
  popt.max_events = 4;
  sim::FaultPlan plan = sim::FaultPlan::FromSeed(0xE1EFA47, popt);
  ycsb::ChaosOutcome off = ycsb::RunChaosPoint(
      ycsb::SystemKind::kMongoCs, ycsb::WorkloadSpec::A(), 4000, opt, plan);
  uint64_t on_fp = 0;
  {
    ScopedLocksetEnv env("1");
    ycsb::ChaosOutcome on = ycsb::RunChaosPoint(
        ycsb::SystemKind::kMongoCs, ycsb::WorkloadSpec::A(), 4000, opt,
        plan);
    on_fp = on.Fingerprint();
  }
  EXPECT_EQ(off.Fingerprint(), on_fp);
}

}  // namespace
}  // namespace elephant
