// Chaos harness: swarms of seed-derived fault plans run against the
// YCSB systems, asserting the durability contracts the paper contrasts
// (§3.4.1) — SQL Server must never lose an acknowledged write across a
// crash/recovery cycle, MongoDB's loss is bounded by its mmap flush
// cadence — plus the harness's own rules: no stuck waiter after the
// event loop drains, and any seed replays bit-identically.
//
// Triage protocol: a failing swarm seed is printed with its plan.
// Re-run exactly that scenario (verbosely, twice, with a fingerprint
// comparison) via
//   ELEPHANT_CHAOS_SEED=0x<seed> ./chaos_test --gtest_filter='*ReplayEnvSeed*'
// then add the seed to tests/chaos_seeds.txt so the corpus pins it.
// Knobs: ELEPHANT_CHAOS_SWARM sizes the swarm (default 100);
// ELEPHANT_CHAOS_REPORT=<file> writes failing seeds there (CI artifact).

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "common/task_pool.h"
#include "exec/operators.h"
#include "exec/segcache.h"
#include "exec/spill.h"
#include "exec/table.h"
#include "sim/fault.h"
#include "ycsb/driver.h"
#include "ycsb/workload.h"

namespace elephant {
namespace {

using ycsb::ChaosOutcome;
using ycsb::SystemKind;

// Flush cadence the chaos runs pin the Mongo loss-window bound to.
constexpr SimTime kChaosFlushInterval = 400 * kMillisecond;

ycsb::DriverOptions ChaosOptions() {
  ycsb::DriverOptions opt;
  opt.record_count = 20000;
  opt.warmup = 500 * kMillisecond;
  opt.measure = 2500 * kMillisecond;
  opt.mongo_flush_interval = kChaosFlushInterval;
  opt.retry.max_retries = 4;
  opt.retry.op_timeout = 1 * kSecond;
  return opt;
}

sim::FaultPlanOptions ChaosPlanOptions() {
  sim::FaultPlanOptions p;
  p.horizon_start = 200 * kMillisecond;
  p.horizon = 2800 * kMillisecond;  // inside warmup + measure
  p.max_events = 5;
  p.max_stall = 300 * kMillisecond;
  p.max_crash_gap = 500 * kMillisecond;
  return p;
}

SystemKind KindForSeed(uint64_t seed) {
  switch (seed % 3) {
    case 0:
      return SystemKind::kSqlCs;
    case 1:
      return SystemKind::kMongoCs;
    default:
      return SystemKind::kMongoAs;
  }
}

/// The whole scenario — system, workload, traffic and fault plan — is a
/// pure function of one seed: the replay contract.
ChaosOutcome RunSeed(uint64_t seed) {
  ycsb::WorkloadSpec workload = (seed / 3) % 2 == 0
                                    ? ycsb::WorkloadSpec::A()
                                    : ycsb::WorkloadSpec::B();
  ycsb::DriverOptions options = ChaosOptions();
  options.seed ^= seed * 0x9E3779B97F4A7C15ULL;
  sim::FaultPlan plan = sim::FaultPlan::FromSeed(seed, ChaosPlanOptions());
  return ycsb::RunChaosPoint(KindForSeed(seed), workload,
                             /*target_throughput=*/4000, options, plan);
}

/// Chaos invariants for one completed run; empty string = clean.
std::string CheckOutcome(uint64_t seed, const ChaosOutcome& out) {
  std::string err;
  if (KindForSeed(seed) == SystemKind::kSqlCs) {
    // (a) WAL + acked-only commits: no acknowledged write is ever lost.
    if (out.ledger.lost_acknowledged != 0) {
      err += StrFormat("SQL lost %lld acknowledged writes\n",
                       (long long)out.ledger.lost_acknowledged);
    }
  } else {
    // (b) No journal, but the loss window is bounded by the flush
    // cadence plus one in-flight flush pass (generous 5x allowance).
    if (out.ledger.max_loss_window > 5 * kChaosFlushInterval) {
      err += StrFormat("Mongo loss window %.3fs exceeds 5x flush %.3fs\n",
                       SimTimeToSeconds(out.ledger.max_loss_window),
                       SimTimeToSeconds(5 * kChaosFlushInterval));
    }
    if (out.ledger.lost_acknowledged > out.ledger.acknowledged) {
      err += StrFormat("Mongo lost %lld > acked %lld\n",
                       (long long)out.ledger.lost_acknowledged,
                       (long long)out.ledger.acknowledged);
    }
  }
  // After the drain every injected crash has completed its restart.
  if (out.crashes_applied != out.restarts_applied) {
    err += StrFormat("crashes %lld != restarts %lld after drain\n",
                     (long long)out.crashes_applied,
                     (long long)out.restarts_applied);
  }
  return err;
}

std::vector<uint64_t> LoadSeedCorpus() {
  std::vector<uint64_t> seeds;
  std::ifstream in(std::string(ELEPHANT_SOURCE_DIR) +
                   "/tests/chaos_seeds.txt");
  std::string line;
  while (std::getline(in, line)) {
    size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    size_t begin = line.find_first_not_of(" \t\r");
    if (begin == std::string::npos) continue;
    seeds.push_back(std::strtoull(line.c_str() + begin, nullptr, 0));
  }
  return seeds;
}

// Runs before the random swarm: seeds that once failed (or that pin
// interesting scenarios) stay covered forever.
TEST(ChaosTest, RegressionCorpus) {
  std::vector<uint64_t> seeds = LoadSeedCorpus();
  ASSERT_FALSE(seeds.empty()) << "tests/chaos_seeds.txt missing or empty";
  for (uint64_t seed : seeds) {
    ChaosOutcome out = RunSeed(seed);
    std::string err = CheckOutcome(seed, out);
    EXPECT_TRUE(err.empty()) << StrFormat("corpus seed 0x%llx:\n",
                                          (unsigned long long)seed)
                             << err << out.plan_description;
  }
}

TEST(ChaosTest, SeedSwarm) {
  int swarm = 100;
  if (const char* env = std::getenv("ELEPHANT_CHAOS_SWARM")) {
    swarm = std::atoi(env);
  }
  ASSERT_GT(swarm, 0);
  const uint64_t base = 0xC4405EEDULL;

  std::vector<ChaosOutcome> outcomes(swarm);
  std::vector<std::string> errors(swarm);
  TaskPool pool(8);
  for (int i = 0; i < swarm; ++i) {
    pool.Submit([&outcomes, &errors, base, i] {
      uint64_t seed = base + static_cast<uint64_t>(i);
      outcomes[i] = RunSeed(seed);
      errors[i] = CheckOutcome(seed, outcomes[i]);
    });
  }
  pool.WaitIdle();

  std::vector<uint64_t> failing;
  int64_t faults = 0, crashes = 0;
  for (int i = 0; i < swarm; ++i) {
    uint64_t seed = base + static_cast<uint64_t>(i);
    faults += outcomes[i].faults_injected;
    crashes += outcomes[i].crashes_applied;
    if (!errors[i].empty()) {
      failing.push_back(seed);
      ADD_FAILURE() << StrFormat(
                           "seed 0x%llx (replay with "
                           "ELEPHANT_CHAOS_SEED=0x%llx):\n",
                           (unsigned long long)seed,
                           (unsigned long long)seed)
                    << errors[i] << outcomes[i].plan_description;
    }
  }
  // The swarm must actually have exercised the machinery.
  EXPECT_GT(faults, swarm / 2) << "suspiciously few faults injected";
  if (swarm >= 50) {
    EXPECT_GT(crashes, 0);
  }

  if (const char* report = std::getenv("ELEPHANT_CHAOS_REPORT")) {
    std::ofstream out(report);
    out << "# chaos swarm: " << swarm << " seeds, " << failing.size()
        << " failing\n";
    for (uint64_t seed : failing) {
      out << StrFormat("0x%llx\n", (unsigned long long)seed);
    }
  }

  // Seed replay at a different host-thread count: the swarm ran on pool
  // workers; re-running the first faulted seeds on this thread must be
  // bit-identical, down to the injection timestamps and the ledger.
  int replayed = 0;
  for (int i = 0; i < swarm && replayed < 3; ++i) {
    if (outcomes[i].faults_injected == 0) continue;
    uint64_t seed = base + static_cast<uint64_t>(i);
    ChaosOutcome replay = RunSeed(seed);
    EXPECT_EQ(replay.Fingerprint(), outcomes[i].Fingerprint())
        << StrFormat("seed 0x%llx replay diverged\n",
                     (unsigned long long)seed)
        << replay.plan_description;
    replayed++;
  }
  EXPECT_GT(replayed, 0);
}

// A run under an empty plan is the plain benchmark, bit for bit: the
// injector schedules nothing and the retry machinery adds no events.
TEST(ChaosTest, EmptyPlanIsBitIdenticalToPlainRun) {
  ycsb::DriverOptions opt = ChaosOptions();
  ycsb::RunResult plain = ycsb::RunOnePoint(
      SystemKind::kSqlCs, ycsb::WorkloadSpec::B(), 4000, opt);
  ChaosOutcome chaos =
      ycsb::RunChaosPoint(SystemKind::kSqlCs, ycsb::WorkloadSpec::B(), 4000,
                          opt, sim::FaultPlan());
  EXPECT_EQ(chaos.result.Fingerprint(), plain.Fingerprint());
  EXPECT_EQ(chaos.faults_injected, 0);
  EXPECT_EQ(chaos.result.retries, 0);
  EXPECT_EQ(chaos.result.transient_errors, 0);
  EXPECT_EQ(chaos.ledger.lost_acknowledged, 0);
}

// Enabling the retry policy must not perturb a fault-free run either —
// the historical fingerprints are the contract.
TEST(ChaosTest, RetryMachineryAddsNothingWithoutFaults) {
  ycsb::DriverOptions off = ChaosOptions();
  off.retry = ycsb::RetryPolicy();  // disabled
  ycsb::DriverOptions on = ChaosOptions();
  ycsb::RunResult without = ycsb::RunOnePoint(
      SystemKind::kSqlCs, ycsb::WorkloadSpec::A(), 4000, off);
  ycsb::RunResult with = ycsb::RunOnePoint(
      SystemKind::kSqlCs, ycsb::WorkloadSpec::A(), 4000, on);
  EXPECT_EQ(with.Fingerprint(), without.Fingerprint());
  EXPECT_EQ(with.retries, 0);
  EXPECT_EQ(with.timeouts, 0);
}

// ELEPHANT_CHAOS_SEED=<seed>: verbose double-run replay of one
// scenario. Skipped unless the variable is set.
TEST(ChaosTest, ReplayEnvSeed) {
  const char* env = std::getenv("ELEPHANT_CHAOS_SEED");
  if (env == nullptr) {
    GTEST_SKIP() << "set ELEPHANT_CHAOS_SEED=<seed> to replay a scenario";
  }
  uint64_t seed = std::strtoull(env, nullptr, 0);
  ChaosOutcome first = RunSeed(seed);
  std::fprintf(stderr, "%s", first.plan_description.c_str());
  std::fprintf(stderr,
               "system=%s faults=%lld crashes=%lld restarts=%lld\n"
               "ledger: acked=%lld lost=%lld unflushed=%lld "
               "loss_window=%.3fs\n"
               "fingerprint=%llx\n",
               ycsb::SystemKindName(KindForSeed(seed)),
               (long long)first.faults_injected,
               (long long)first.crashes_applied,
               (long long)first.restarts_applied,
               (long long)first.ledger.acknowledged,
               (long long)first.ledger.lost_acknowledged,
               (long long)first.ledger.unflushed,
               SimTimeToSeconds(first.ledger.max_loss_window),
               (unsigned long long)first.Fingerprint());
  ChaosOutcome second = RunSeed(seed);
  EXPECT_EQ(first.Fingerprint(), second.Fingerprint())
      << "replay of the same seed diverged";
  std::string err = CheckOutcome(seed, first);
  EXPECT_TRUE(err.empty()) << err;
}

// ---------------------------------------------------------------------------
// Mid-spill fault injection (DESIGN.md §15). A spill-file I/O error in
// the middle of an out-of-core operator must surface as a Status from
// the Try* entry point with no partial results and no segments leaked
// in the global cache, and the public operator must fall back to the
// in-memory path with a bit-identical answer.

exec::Table SpillChaosTable(size_t rows) {
  exec::Table t({{"k", exec::ValueType::kInt},
                 {"v", exec::ValueType::kDouble}});
  for (size_t i = 0; i < rows; ++i) {
    // Deterministic multiplicative scramble: no RNG state to manage.
    int64_t k = static_cast<int64_t>((i * 2654435761u) % 509);
    t.AddRow({exec::Value{k},
              exec::Value{static_cast<double>(i % 1024) * 0.25}});
  }
  return t;
}

class SpillChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ambient_budget_ = exec::ExecMemoryBudget();
    exec::SetExecMemoryBudget(0);
    exec::ResetSpillCounters();
    base_entries_ = exec::SegmentCache::Global().GetStats().entries;
  }
  void TearDown() override {
    EXPECT_EQ(exec::SegmentCache::Global().GetStats().entries,
              base_entries_)
        << "a failed spill leaked segments in the global cache";
    exec::SegmentCache::Global().InjectSpillErrors(0);
    exec::SetExecMemoryBudget(ambient_budget_);
  }

 private:
  size_t ambient_budget_ = 0;
  uint64_t base_entries_ = 0;
};

TEST_F(SpillChaosTest, MidSpillWriteFaultSurfacesWithNoPartialResults) {
  exec::Table t = SpillChaosTable(20000);
  std::vector<exec::SortKey> keys = {{t.ColIndex("k"), true},
                                     {t.ColIndex("v"), false}};
  exec::SetExecMemoryBudget(64 << 10);
  ASSERT_TRUE(exec::SpillSortPlanned(t, keys));
  uint64_t entries = exec::SegmentCache::Global().GetStats().entries;
  exec::SegmentCache::Global().InjectSpillErrors(1);
  Result<exec::Table> r = exec::TryExternalSortBy(t, keys);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
  // Scoped cleanup removed every segment the aborted sort had parked.
  EXPECT_EQ(exec::SegmentCache::Global().GetStats().entries, entries);
  // Faults exhausted: the identical call now succeeds end to end.
  Result<exec::Table> retry = exec::TryExternalSortBy(t, keys);
  ASSERT_TRUE(retry.ok()) << retry.status().message();
  exec::SetExecMemoryBudget(0);
  exec::Table oracle = exec::SortBy(t, keys);
  EXPECT_EQ(exec::TableFingerprint(retry.value()),
            exec::TableFingerprint(oracle));
}

TEST_F(SpillChaosTest, JoinAndAggFaultsSurfaceFromTryEntryPoints) {
  exec::Table left = SpillChaosTable(9000);
  exec::Table right = SpillChaosTable(8000);
  std::vector<int> lk = {left.ColIndex("k")};
  std::vector<int> rk = {right.ColIndex("k")};
  std::vector<int> groups = {left.ColIndex("k")};
  std::vector<exec::AggExpr> aggs = {
      exec::ColAgg(exec::AggKind::kSum, left, "v", "sum_v",
                   exec::ValueType::kDouble),
      exec::CountAgg("n")};
  exec::SetExecMemoryBudget(64 << 10);
  uint64_t entries = exec::SegmentCache::Global().GetStats().entries;
  exec::SegmentCache::Global().InjectSpillErrors(1);
  Result<exec::Table> j = exec::TryGraceHashJoin(
      left, right, lk, rk, exec::JoinType::kLeftSemi);
  EXPECT_FALSE(j.ok());
  EXPECT_EQ(exec::SegmentCache::Global().GetStats().entries, entries);
  // The aggregate needs a tighter cache budget before its partition
  // chunks overflow residency and touch the spill file at all.
  exec::Table big = SpillChaosTable(40000);
  std::vector<int> big_groups = {big.ColIndex("k")};
  std::vector<exec::AggExpr> big_aggs = {
      exec::ColAgg(exec::AggKind::kSum, big, "v", "sum_v",
                   exec::ValueType::kDouble),
      exec::CountAgg("n")};
  exec::SetExecMemoryBudget(16 << 10);
  exec::SegmentCache::Global().InjectSpillErrors(1);
  Result<exec::Table> a =
      exec::TrySpillingHashAggregate(big, big_groups, big_aggs, nullptr);
  EXPECT_FALSE(a.ok());
  EXPECT_EQ(exec::SegmentCache::Global().GetStats().entries, entries);
}

TEST_F(SpillChaosTest, PublicOperatorsFallBackBitIdenticalUnderFaults) {
  exec::Table t = SpillChaosTable(20000);
  std::vector<exec::SortKey> keys = {{t.ColIndex("k"), true}};
  std::vector<int> groups = {t.ColIndex("k")};
  std::vector<exec::AggExpr> aggs = {
      exec::ColAgg(exec::AggKind::kSum, t, "v", "sum_v",
                   exec::ValueType::kDouble),
      exec::CountAgg("n")};
  exec::SetExecMemoryBudget(0);
  exec::Table sort_oracle = exec::SortBy(t, keys);
  exec::Table agg_oracle = exec::HashAggregate(t, groups, aggs);
  exec::SetExecMemoryBudget(64 << 10);
  uint64_t fallbacks = exec::GetSpillCounters().fallbacks;
  exec::SegmentCache::Global().InjectSpillErrors(1);
  exec::Table sorted = exec::SortBy(t, keys);
  exec::SegmentCache::Global().InjectSpillErrors(1);
  exec::Table agged = exec::HashAggregate(t, groups, aggs);
  EXPECT_EQ(exec::GetSpillCounters().fallbacks, fallbacks + 2);
  EXPECT_EQ(exec::TableFingerprint(sorted),
            exec::TableFingerprint(sort_oracle));
  EXPECT_EQ(exec::TableFingerprint(agged),
            exec::TableFingerprint(agg_oracle));
}

}  // namespace
}  // namespace elephant
