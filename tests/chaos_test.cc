// Chaos harness: swarms of seed-derived fault plans run against the
// YCSB systems, asserting the durability contracts the paper contrasts
// (§3.4.1) — SQL Server must never lose an acknowledged write across a
// crash/recovery cycle, MongoDB's loss is bounded by its mmap flush
// cadence — plus the harness's own rules: no stuck waiter after the
// event loop drains, and any seed replays bit-identically.
//
// Triage protocol: a failing swarm seed is printed with its plan.
// Re-run exactly that scenario (verbosely, twice, with a fingerprint
// comparison) via
//   ELEPHANT_CHAOS_SEED=0x<seed> ./chaos_test --gtest_filter='*ReplayEnvSeed*'
// then add the seed to tests/chaos_seeds.txt so the corpus pins it.
// Knobs: ELEPHANT_CHAOS_SWARM sizes the swarm (default 100);
// ELEPHANT_CHAOS_REPORT=<file> writes failing seeds there (CI artifact).

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "common/task_pool.h"
#include "sim/fault.h"
#include "ycsb/driver.h"
#include "ycsb/workload.h"

namespace elephant {
namespace {

using ycsb::ChaosOutcome;
using ycsb::SystemKind;

// Flush cadence the chaos runs pin the Mongo loss-window bound to.
constexpr SimTime kChaosFlushInterval = 400 * kMillisecond;

ycsb::DriverOptions ChaosOptions() {
  ycsb::DriverOptions opt;
  opt.record_count = 20000;
  opt.warmup = 500 * kMillisecond;
  opt.measure = 2500 * kMillisecond;
  opt.mongo_flush_interval = kChaosFlushInterval;
  opt.retry.max_retries = 4;
  opt.retry.op_timeout = 1 * kSecond;
  return opt;
}

sim::FaultPlanOptions ChaosPlanOptions() {
  sim::FaultPlanOptions p;
  p.horizon_start = 200 * kMillisecond;
  p.horizon = 2800 * kMillisecond;  // inside warmup + measure
  p.max_events = 5;
  p.max_stall = 300 * kMillisecond;
  p.max_crash_gap = 500 * kMillisecond;
  return p;
}

SystemKind KindForSeed(uint64_t seed) {
  switch (seed % 3) {
    case 0:
      return SystemKind::kSqlCs;
    case 1:
      return SystemKind::kMongoCs;
    default:
      return SystemKind::kMongoAs;
  }
}

/// The whole scenario — system, workload, traffic and fault plan — is a
/// pure function of one seed: the replay contract.
ChaosOutcome RunSeed(uint64_t seed) {
  ycsb::WorkloadSpec workload = (seed / 3) % 2 == 0
                                    ? ycsb::WorkloadSpec::A()
                                    : ycsb::WorkloadSpec::B();
  ycsb::DriverOptions options = ChaosOptions();
  options.seed ^= seed * 0x9E3779B97F4A7C15ULL;
  sim::FaultPlan plan = sim::FaultPlan::FromSeed(seed, ChaosPlanOptions());
  return ycsb::RunChaosPoint(KindForSeed(seed), workload,
                             /*target_throughput=*/4000, options, plan);
}

/// Chaos invariants for one completed run; empty string = clean.
std::string CheckOutcome(uint64_t seed, const ChaosOutcome& out) {
  std::string err;
  if (KindForSeed(seed) == SystemKind::kSqlCs) {
    // (a) WAL + acked-only commits: no acknowledged write is ever lost.
    if (out.ledger.lost_acknowledged != 0) {
      err += StrFormat("SQL lost %lld acknowledged writes\n",
                       (long long)out.ledger.lost_acknowledged);
    }
  } else {
    // (b) No journal, but the loss window is bounded by the flush
    // cadence plus one in-flight flush pass (generous 5x allowance).
    if (out.ledger.max_loss_window > 5 * kChaosFlushInterval) {
      err += StrFormat("Mongo loss window %.3fs exceeds 5x flush %.3fs\n",
                       SimTimeToSeconds(out.ledger.max_loss_window),
                       SimTimeToSeconds(5 * kChaosFlushInterval));
    }
    if (out.ledger.lost_acknowledged > out.ledger.acknowledged) {
      err += StrFormat("Mongo lost %lld > acked %lld\n",
                       (long long)out.ledger.lost_acknowledged,
                       (long long)out.ledger.acknowledged);
    }
  }
  // After the drain every injected crash has completed its restart.
  if (out.crashes_applied != out.restarts_applied) {
    err += StrFormat("crashes %lld != restarts %lld after drain\n",
                     (long long)out.crashes_applied,
                     (long long)out.restarts_applied);
  }
  return err;
}

std::vector<uint64_t> LoadSeedCorpus() {
  std::vector<uint64_t> seeds;
  std::ifstream in(std::string(ELEPHANT_SOURCE_DIR) +
                   "/tests/chaos_seeds.txt");
  std::string line;
  while (std::getline(in, line)) {
    size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    size_t begin = line.find_first_not_of(" \t\r");
    if (begin == std::string::npos) continue;
    seeds.push_back(std::strtoull(line.c_str() + begin, nullptr, 0));
  }
  return seeds;
}

// Runs before the random swarm: seeds that once failed (or that pin
// interesting scenarios) stay covered forever.
TEST(ChaosTest, RegressionCorpus) {
  std::vector<uint64_t> seeds = LoadSeedCorpus();
  ASSERT_FALSE(seeds.empty()) << "tests/chaos_seeds.txt missing or empty";
  for (uint64_t seed : seeds) {
    ChaosOutcome out = RunSeed(seed);
    std::string err = CheckOutcome(seed, out);
    EXPECT_TRUE(err.empty()) << StrFormat("corpus seed 0x%llx:\n",
                                          (unsigned long long)seed)
                             << err << out.plan_description;
  }
}

TEST(ChaosTest, SeedSwarm) {
  int swarm = 100;
  if (const char* env = std::getenv("ELEPHANT_CHAOS_SWARM")) {
    swarm = std::atoi(env);
  }
  ASSERT_GT(swarm, 0);
  const uint64_t base = 0xC4405EEDULL;

  std::vector<ChaosOutcome> outcomes(swarm);
  std::vector<std::string> errors(swarm);
  TaskPool pool(8);
  for (int i = 0; i < swarm; ++i) {
    pool.Submit([&outcomes, &errors, base, i] {
      uint64_t seed = base + static_cast<uint64_t>(i);
      outcomes[i] = RunSeed(seed);
      errors[i] = CheckOutcome(seed, outcomes[i]);
    });
  }
  pool.WaitIdle();

  std::vector<uint64_t> failing;
  int64_t faults = 0, crashes = 0;
  for (int i = 0; i < swarm; ++i) {
    uint64_t seed = base + static_cast<uint64_t>(i);
    faults += outcomes[i].faults_injected;
    crashes += outcomes[i].crashes_applied;
    if (!errors[i].empty()) {
      failing.push_back(seed);
      ADD_FAILURE() << StrFormat(
                           "seed 0x%llx (replay with "
                           "ELEPHANT_CHAOS_SEED=0x%llx):\n",
                           (unsigned long long)seed,
                           (unsigned long long)seed)
                    << errors[i] << outcomes[i].plan_description;
    }
  }
  // The swarm must actually have exercised the machinery.
  EXPECT_GT(faults, swarm / 2) << "suspiciously few faults injected";
  if (swarm >= 50) {
    EXPECT_GT(crashes, 0);
  }

  if (const char* report = std::getenv("ELEPHANT_CHAOS_REPORT")) {
    std::ofstream out(report);
    out << "# chaos swarm: " << swarm << " seeds, " << failing.size()
        << " failing\n";
    for (uint64_t seed : failing) {
      out << StrFormat("0x%llx\n", (unsigned long long)seed);
    }
  }

  // Seed replay at a different host-thread count: the swarm ran on pool
  // workers; re-running the first faulted seeds on this thread must be
  // bit-identical, down to the injection timestamps and the ledger.
  int replayed = 0;
  for (int i = 0; i < swarm && replayed < 3; ++i) {
    if (outcomes[i].faults_injected == 0) continue;
    uint64_t seed = base + static_cast<uint64_t>(i);
    ChaosOutcome replay = RunSeed(seed);
    EXPECT_EQ(replay.Fingerprint(), outcomes[i].Fingerprint())
        << StrFormat("seed 0x%llx replay diverged\n",
                     (unsigned long long)seed)
        << replay.plan_description;
    replayed++;
  }
  EXPECT_GT(replayed, 0);
}

// A run under an empty plan is the plain benchmark, bit for bit: the
// injector schedules nothing and the retry machinery adds no events.
TEST(ChaosTest, EmptyPlanIsBitIdenticalToPlainRun) {
  ycsb::DriverOptions opt = ChaosOptions();
  ycsb::RunResult plain = ycsb::RunOnePoint(
      SystemKind::kSqlCs, ycsb::WorkloadSpec::B(), 4000, opt);
  ChaosOutcome chaos =
      ycsb::RunChaosPoint(SystemKind::kSqlCs, ycsb::WorkloadSpec::B(), 4000,
                          opt, sim::FaultPlan());
  EXPECT_EQ(chaos.result.Fingerprint(), plain.Fingerprint());
  EXPECT_EQ(chaos.faults_injected, 0);
  EXPECT_EQ(chaos.result.retries, 0);
  EXPECT_EQ(chaos.result.transient_errors, 0);
  EXPECT_EQ(chaos.ledger.lost_acknowledged, 0);
}

// Enabling the retry policy must not perturb a fault-free run either —
// the historical fingerprints are the contract.
TEST(ChaosTest, RetryMachineryAddsNothingWithoutFaults) {
  ycsb::DriverOptions off = ChaosOptions();
  off.retry = ycsb::RetryPolicy();  // disabled
  ycsb::DriverOptions on = ChaosOptions();
  ycsb::RunResult without = ycsb::RunOnePoint(
      SystemKind::kSqlCs, ycsb::WorkloadSpec::A(), 4000, off);
  ycsb::RunResult with = ycsb::RunOnePoint(
      SystemKind::kSqlCs, ycsb::WorkloadSpec::A(), 4000, on);
  EXPECT_EQ(with.Fingerprint(), without.Fingerprint());
  EXPECT_EQ(with.retries, 0);
  EXPECT_EQ(with.timeouts, 0);
}

// ELEPHANT_CHAOS_SEED=<seed>: verbose double-run replay of one
// scenario. Skipped unless the variable is set.
TEST(ChaosTest, ReplayEnvSeed) {
  const char* env = std::getenv("ELEPHANT_CHAOS_SEED");
  if (env == nullptr) {
    GTEST_SKIP() << "set ELEPHANT_CHAOS_SEED=<seed> to replay a scenario";
  }
  uint64_t seed = std::strtoull(env, nullptr, 0);
  ChaosOutcome first = RunSeed(seed);
  std::fprintf(stderr, "%s", first.plan_description.c_str());
  std::fprintf(stderr,
               "system=%s faults=%lld crashes=%lld restarts=%lld\n"
               "ledger: acked=%lld lost=%lld unflushed=%lld "
               "loss_window=%.3fs\n"
               "fingerprint=%llx\n",
               ycsb::SystemKindName(KindForSeed(seed)),
               (long long)first.faults_injected,
               (long long)first.crashes_applied,
               (long long)first.restarts_applied,
               (long long)first.ledger.acknowledged,
               (long long)first.ledger.lost_acknowledged,
               (long long)first.ledger.unflushed,
               SimTimeToSeconds(first.ledger.max_loss_window),
               (unsigned long long)first.Fingerprint());
  ChaosOutcome second = RunSeed(seed);
  EXPECT_EQ(first.Fingerprint(), second.Fingerprint())
      << "replay of the same seed diverged";
  std::string err = CheckOutcome(seed, first);
  EXPECT_TRUE(err.empty()) << err;
}

}  // namespace
}  // namespace elephant
