#include <gtest/gtest.h>

#include <set>

#include "exec/operators.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"
#include "tpch/refresh.h"

namespace elephant::tpch {
namespace {

using exec::AsInt;

TEST(RefreshTest, Rf1InsertsSpecVolume) {
  TpchDatabase db = GenerateDatabase(0.01);
  size_t orders_before = db.orders.num_rows();
  size_t lines_before = db.lineitem.num_rows();
  auto r = RefreshInsert(&db, 0);
  ASSERT_TRUE(r.ok());
  // SF*1500 = 15 orders at SF 0.01.
  EXPECT_EQ(r.value().orders_changed, 15);
  EXPECT_EQ(db.orders.num_rows(), orders_before + 15);
  EXPECT_EQ(db.lineitem.num_rows(),
            lines_before + static_cast<size_t>(r.value().lineitems_changed));
  EXPECT_GE(r.value().lineitems_changed, 15);
  EXPECT_LE(r.value().lineitems_changed, 15 * 7);
}

TEST(RefreshTest, Rf1KeysAreFreshAndValid) {
  TpchDatabase db = GenerateDatabase(0.01);
  int okey = db.orders.ColIndex("o_orderkey");
  int64_t max_before = 0;
  for (const auto& row : db.orders.rows()) {
    max_before = std::max(max_before, AsInt(row[okey]));
  }
  ASSERT_TRUE(RefreshInsert(&db, 0).ok());
  int ck = db.orders.ColIndex("o_custkey");
  int found_new = 0;
  for (const auto& row : db.orders.rows()) {
    if (AsInt(row[okey]) > max_before) {
      found_new++;
      // Inserted orders respect the custkey mod-3 rule.
      EXPECT_NE(AsInt(row[ck]) % 3, 0);
      EXPECT_GE(AsInt(row[ck]), 1);
      EXPECT_LE(AsInt(row[ck]),
                static_cast<int64_t>(db.customer.num_rows()));
    }
  }
  EXPECT_EQ(found_new, 15);
}

TEST(RefreshTest, Rf2RemovesOrdersAndTheirLineitems) {
  TpchDatabase db = GenerateDatabase(0.01);
  size_t orders_before = db.orders.num_rows();
  auto r = RefreshDelete(&db, 0);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().orders_changed, 15);
  EXPECT_EQ(db.orders.num_rows(), orders_before - 15);
  // No orphaned lineitems: every l_orderkey still has its order.
  std::set<int64_t> live;
  int okey = db.orders.ColIndex("o_orderkey");
  for (const auto& row : db.orders.rows()) live.insert(AsInt(row[okey]));
  int lkey = db.lineitem.ColIndex("l_orderkey");
  for (const auto& row : db.lineitem.rows()) {
    EXPECT_TRUE(live.count(AsInt(row[lkey])))
        << "orphan lineitem for order " << AsInt(row[lkey]);
  }
}

TEST(RefreshTest, InsertThenDeleteRoundTripPreservesQueryability) {
  TpchDatabase db = GenerateDatabase(0.005);
  exec::Table q1_before = RunQuery(1, db);
  ASSERT_TRUE(RefreshInsert(&db, 0).ok());
  ASSERT_TRUE(RefreshDelete(&db, 1).ok());
  // Queries still run and produce the same group structure.
  exec::Table q1_after = RunQuery(1, db);
  EXPECT_EQ(q1_after.num_cols(), q1_before.num_cols());
  EXPECT_GE(q1_after.num_rows(), 3u);
}

TEST(RefreshTest, StreamsInsertDistinctKeys) {
  TpchDatabase db = GenerateDatabase(0.005);
  ASSERT_TRUE(RefreshInsert(&db, 0).ok());
  size_t after_one = db.orders.num_rows();
  ASSERT_TRUE(RefreshInsert(&db, 1).ok());
  EXPECT_GT(db.orders.num_rows(), after_one);
  // All orderkeys unique.
  std::set<int64_t> keys;
  int okey = db.orders.ColIndex("o_orderkey");
  for (const auto& row : db.orders.rows()) {
    EXPECT_TRUE(keys.insert(AsInt(row[okey])).second);
  }
}

TEST(RefreshTest, DeletePastEndFails) {
  TpchDatabase db = GenerateDatabase(0.001);
  EXPECT_EQ(RefreshDelete(&db, 1000000).status().code(),
            StatusCode::kOutOfRange);
}

TEST(RefreshTest, NullDatabaseRejected) {
  EXPECT_EQ(RefreshInsert(nullptr).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(RefreshDelete(nullptr).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(RefreshCostTest, PaperHiveCannotRunThem) {
  RefreshCost cost = EstimateRefreshCost(1000, /*hive_supports_dml=*/false);
  EXPECT_FALSE(cost.hive_supported);
  EXPECT_GT(cost.pdw_seconds, 0);
}

TEST(RefreshCostTest, HiveDeletesRewritePartitions) {
  RefreshCost cost = EstimateRefreshCost(1000, /*hive_supports_dml=*/true);
  EXPECT_TRUE(cost.hive_supported);
  // Hive's rewrite-based DML is far more expensive than PDW's bulk DML.
  EXPECT_GT(cost.hive_seconds, 10 * cost.pdw_seconds);
}

}  // namespace
}  // namespace elephant::tpch
