#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "cluster/cluster.h"
#include "common/rng.h"
#include "sim/simulation.h"
#include "sqlkv/btree.h"
#include "sqlkv/buffer_pool.h"
#include "sqlkv/engine.h"
#include "sqlkv/lock_manager.h"
#include "sqlkv/wal.h"

namespace elephant::sqlkv {
namespace {

// ------------------------------------------------------------- B+tree

TEST(BTreeTest, InsertGetRoundTrip) {
  BTree tree(8192);
  EXPECT_TRUE(tree.Insert(42, {"hello", 0}).ok());
  auto r = tree.Get(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().record->payload, "hello");
  EXPECT_TRUE(tree.Get(43).status().IsNotFound());
  EXPECT_EQ(tree.size(), 1u);
}

TEST(BTreeTest, DuplicateInsertRejected) {
  BTree tree(8192);
  ASSERT_TRUE(tree.Insert(1, {"a", 0}).ok());
  EXPECT_EQ(tree.Insert(1, {"b", 0}).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(tree.Get(1).value().record->payload, "a");
}

TEST(BTreeTest, UpdateInPlace) {
  BTree tree(8192);
  ASSERT_TRUE(tree.Insert(7, {"old", 100}).ok());
  ASSERT_TRUE(tree.Update(7, [](Record* r) { r->payload = "new"; }).ok());
  EXPECT_EQ(tree.Get(7).value().record->payload, "new");
  EXPECT_TRUE(tree.Update(8, [](Record*) {}).IsNotFound());
}

TEST(BTreeTest, RemoveAndNotFound) {
  BTree tree(8192);
  ASSERT_TRUE(tree.Insert(5, {"x", 0}).ok());
  ASSERT_TRUE(tree.Remove(5).ok());
  EXPECT_TRUE(tree.Get(5).status().IsNotFound());
  EXPECT_TRUE(tree.Remove(5).IsNotFound());
  EXPECT_EQ(tree.size(), 0u);
}

TEST(BTreeTest, AscendingLoadPacksLeaves) {
  // 1 KB records in 8 KB pages: a packed leaf holds 7; the rightmost
  // split must leave loaded leaves full, not half-empty.
  BTree tree(8192);
  const int n = 7000;
  for (uint64_t k = 0; k < n; ++k) {
    ASSERT_TRUE(tree.Insert(k, {"", 1024}).ok());
  }
  double per_leaf = static_cast<double>(n) / tree.leaf_count();
  EXPECT_GT(per_leaf, 6.0);
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(BTreeTest, RandomInsertInvariantsHold) {
  BTree tree(4096);
  Rng rng(7);
  std::set<uint64_t> keys;
  for (int i = 0; i < 20000; ++i) {
    uint64_t k = rng.Uniform(1000000);
    if (keys.insert(k).second) {
      ASSERT_TRUE(tree.Insert(k, {"", 100}).ok());
    }
  }
  ASSERT_TRUE(tree.CheckInvariants().ok());
  EXPECT_EQ(tree.size(), keys.size());
  // Scan returns every key in order.
  std::vector<uint64_t> scanned;
  tree.Scan(0, static_cast<int>(keys.size()) + 10,
            [&](uint64_t k, const Record&, uint64_t) {
              scanned.push_back(k);
            });
  ASSERT_EQ(scanned.size(), keys.size());
  auto it = keys.begin();
  for (size_t i = 0; i < scanned.size(); ++i, ++it) {
    EXPECT_EQ(scanned[i], *it);
  }
}

TEST(BTreeTest, ScanFromMiddle) {
  BTree tree(4096);
  for (uint64_t k = 0; k < 100; ++k) {
    ASSERT_TRUE(tree.Insert(k * 10, {"", 64}).ok());
  }
  std::vector<uint64_t> got;
  int n = tree.Scan(495, 5, [&](uint64_t k, const Record&, uint64_t) {
    got.push_back(k);
  });
  EXPECT_EQ(n, 5);
  EXPECT_EQ(got, (std::vector<uint64_t>{500, 510, 520, 530, 540}));
}

TEST(BTreeTest, LowerBoundAndMaxKey) {
  BTree tree(4096);
  EXPECT_TRUE(tree.MaxKey().status().IsNotFound());
  for (uint64_t k : {10u, 20u, 30u}) {
    ASSERT_TRUE(tree.Insert(k, {"", 8}).ok());
  }
  EXPECT_EQ(tree.LowerBound(15).value(), 20u);
  EXPECT_EQ(tree.LowerBound(30).value(), 30u);
  EXPECT_TRUE(tree.LowerBound(31).status().IsNotFound());
  EXPECT_EQ(tree.MaxKey().value(), 30u);
}

TEST(BTreeTest, LeafPageIdsAreStable) {
  BTree tree(8192);
  for (uint64_t k = 0; k < 100; ++k) {
    ASSERT_TRUE(tree.Insert(k, {"", 1024}).ok());
  }
  uint64_t page = tree.Get(5).value().page_id;
  // Touch unrelated parts of the tree; page of key 5 must not change.
  for (uint64_t k = 1000; k < 1100; ++k) {
    ASSERT_TRUE(tree.Insert(k, {"", 1024}).ok());
  }
  EXPECT_EQ(tree.Get(5).value().page_id, page);
}

// Property sweep: invariants hold across page sizes and record sizes.
class BTreeParamTest
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(BTreeParamTest, InvariantsAcrossGeometries) {
  auto [page_bytes, record_bytes] = GetParam();
  BTree tree(page_bytes);
  Rng rng(page_bytes * 31 + record_bytes);
  std::set<uint64_t> keys;
  for (int i = 0; i < 3000; ++i) {
    uint64_t k = rng.Uniform(100000);
    if (keys.insert(k).second) {
      ASSERT_TRUE(
          tree.Insert(k, {"", static_cast<int32_t>(record_bytes)}).ok());
    }
  }
  EXPECT_TRUE(tree.CheckInvariants().ok());
  EXPECT_EQ(tree.size(), keys.size());
  EXPECT_EQ(tree.logical_bytes(),
            static_cast<int64_t>(keys.size()) * (record_bytes + 16));
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, BTreeParamTest,
    ::testing::Values(std::make_pair(4096, 100), std::make_pair(8192, 1024),
                      std::make_pair(32768, 1024),
                      std::make_pair(4096, 5000),  // record > page
                      std::make_pair(8192, 10)));

// -------------------------------------------------------- buffer pool

TEST(BufferPoolTest, HitsAndMisses) {
  BufferPool pool(10 * 8192, 8192);
  EXPECT_FALSE(pool.Touch(1, false).hit);
  EXPECT_TRUE(pool.Touch(1, false).hit);
  EXPECT_EQ(pool.hits(), 1);
  EXPECT_EQ(pool.misses(), 1);
  EXPECT_DOUBLE_EQ(pool.HitRate(), 0.5);
}

TEST(BufferPoolTest, LruEviction) {
  BufferPool pool(3 * 8192, 8192);
  pool.Touch(1, false);
  pool.Touch(2, false);
  pool.Touch(3, false);
  pool.Touch(1, false);  // promote 1
  auto access = pool.Touch(4, false);
  EXPECT_TRUE(access.evicted);
  EXPECT_EQ(access.evicted_page, 2u);  // LRU victim
  EXPECT_TRUE(pool.Contains(1));
  EXPECT_FALSE(pool.Contains(2));
}

TEST(BufferPoolTest, DirtyTrackingAndEviction) {
  BufferPool pool(2 * 8192, 8192);
  pool.Touch(1, true);
  EXPECT_EQ(pool.dirty_count(), 1u);
  pool.Touch(2, false);
  auto access = pool.Touch(3, false);
  EXPECT_TRUE(access.evicted_dirty);
  EXPECT_EQ(access.evicted_page, 1u);
  EXPECT_EQ(pool.dirty_count(), 0u);
}

TEST(BufferPoolTest, MarkCleanAndDirtyList) {
  BufferPool pool(10 * 8192, 8192);
  pool.Touch(1, true);
  pool.Touch(2, true);
  pool.Touch(3, false);
  auto dirty = pool.DirtyPages();
  EXPECT_EQ(dirty.size(), 2u);
  pool.MarkClean(1);
  EXPECT_EQ(pool.dirty_count(), 1u);
  EXPECT_EQ(pool.DirtyPages(), std::vector<uint64_t>{2});
}

// ----------------------------------------------------------- lock mgr

TEST(LockManagerTest, ReclaimsIdleLocks) {
  sim::Simulation sim;
  LockManager locks(&sim);
  bool acquired = false;
  auto t = [](sim::Simulation* s, LockManager* lm, bool* ok) -> sim::Task {
    (void)s;
    co_await lm->LockFor(42).AcquireExclusive();
    *ok = true;
    lm->Release(42, true);
  };
  t(&sim, &locks, &acquired);
  sim.Run();
  EXPECT_TRUE(acquired);
  EXPECT_EQ(locks.active_locks(), 0u);  // reclaimed after release
}

TEST(LockManagerTest, DifferentKeysDoNotConflict) {
  sim::Simulation sim;
  LockManager locks(&sim);
  std::vector<SimTime> done;
  auto writer = [](sim::Simulation* s, LockManager* lm, uint64_t key,
                   std::vector<SimTime>* d) -> sim::Task {
    co_await lm->LockFor(key).AcquireExclusive();
    co_await s->Delay(10);
    lm->Release(key, true);
    d->push_back(s->now());
  };
  writer(&sim, &locks, 1, &done);
  writer(&sim, &locks, 2, &done);
  sim.Run();
  EXPECT_EQ(done, (std::vector<SimTime>{10, 10}));  // parallel
}

TEST(LockManagerTest, SameKeySerializes) {
  sim::Simulation sim;
  LockManager locks(&sim);
  std::vector<SimTime> done;
  auto writer = [](sim::Simulation* s, LockManager* lm, uint64_t key,
                   std::vector<SimTime>* d) -> sim::Task {
    co_await lm->LockFor(key).AcquireExclusive();
    co_await s->Delay(10);
    lm->Release(key, true);
    d->push_back(s->now());
  };
  writer(&sim, &locks, 1, &done);
  writer(&sim, &locks, 1, &done);
  sim.Run();
  EXPECT_EQ(done, (std::vector<SimTime>{10, 20}));
}

// ----------------------------------------------------------------- WAL

TEST(WalTest, GroupCommitBatchesConcurrentWrites) {
  sim::Simulation sim;
  GroupCommitLog::Options opt;
  opt.flush_latency = 1000;  // 1 ms
  GroupCommitLog log(&sim, opt);
  // First commit starts a flush; the next 9 arrive while it is in
  // flight and share the second flush.
  sim::Latch done(&sim, 10);
  for (int i = 0; i < 10; ++i) log.Append(100, &done);
  sim.Run();
  EXPECT_EQ(done.count(), 0);
  EXPECT_EQ(log.flushes(), 2);
  EXPECT_GT(log.MeanBatchSize(), 4.0);
  EXPECT_EQ(log.bytes_written(), 1000);
}

TEST(WalTest, SequentialCommitsFlushIndividually) {
  sim::Simulation sim;
  GroupCommitLog log(&sim, {});
  for (int i = 0; i < 3; ++i) {
    sim::Latch done(&sim, 1);
    log.Append(100, &done);
    sim.Run();
    EXPECT_EQ(done.count(), 0);
  }
  EXPECT_EQ(log.flushes(), 3);
}

// --------------------------------------------------------- SqlEngine

class SqlEngineTest : public ::testing::Test {
 protected:
  SqlEngineTest() : node_(&sim_, 0, cluster::NodeConfig{}) {}

  SqlEngine MakeEngine(SqlEngineOptions opt = {}) {
    return SqlEngine(&sim_, &node_, opt);
  }

  sim::Simulation sim_;
  cluster::Node node_;
};

TEST_F(SqlEngineTest, ReadHitVsMissLatency) {
  SqlEngine engine = MakeEngine();
  for (uint64_t k = 0; k < 1000; ++k) {
    ASSERT_TRUE(engine.LoadRecord(k, 1024).ok());
  }
  // Cold read: 8 KB random I/O (~8 ms).
  OpOutcome out1;
  sim::Latch d1(&sim_, 1);
  SimTime t0 = sim_.now();
  engine.Read(5, &out1, &d1);
  sim_.Run();
  SimTime cold = sim_.now() - t0;
  EXPECT_TRUE(out1.ok);
  EXPECT_GT(cold, 7 * kMillisecond);
  // Warm read of the same page: no I/O.
  OpOutcome out2;
  sim::Latch d2(&sim_, 1);
  t0 = sim_.now();
  engine.Read(5, &out2, &d2);
  sim_.Run();
  SimTime warm = sim_.now() - t0;
  EXPECT_LT(warm, kMillisecond);
  EXPECT_EQ(engine.disk_reads(), 1);
}

TEST_F(SqlEngineTest, ReadOfMissingKeyReturnsNotFound) {
  SqlEngine engine = MakeEngine();
  OpOutcome out;
  sim::Latch d(&sim_, 1);
  engine.Read(999, &out, &d);
  sim_.Run();
  EXPECT_FALSE(out.ok);
}

TEST_F(SqlEngineTest, UpdateWaitsForWalAndDirtiesPage) {
  SqlEngine engine = MakeEngine();
  ASSERT_TRUE(engine.LoadRecord(1, 1024).ok());
  OpOutcome out;
  sim::Latch d(&sim_, 1);
  SimTime t0 = sim_.now();
  engine.Update(1, 100, &out, &d);
  sim_.Run();
  EXPECT_TRUE(out.ok);
  // Latency includes the fault and the group-commit flush.
  EXPECT_GT(sim_.now() - t0, engine.log().flushes() > 0
                                 ? 8 * kMillisecond
                                 : 0);
  EXPECT_EQ(engine.log().flushes(), 1);
  EXPECT_EQ(engine.pool().dirty_count(), 1u);
}

TEST_F(SqlEngineTest, InsertNewKeySkipsDiskRead) {
  SqlEngine engine = MakeEngine();
  OpOutcome out;
  sim::Latch d(&sim_, 1);
  engine.Insert(1, 1024, &out, &d);
  sim_.Run();
  EXPECT_TRUE(out.ok);
  EXPECT_EQ(engine.disk_reads(), 0);  // freshly allocated page
}

TEST_F(SqlEngineTest, ReadCommittedReadsBlockOnWriters) {
  SqlEngineOptions opt;
  SqlEngine engine = MakeEngine(opt);
  ASSERT_TRUE(engine.LoadRecord(1, 1024).ok());
  // Warm the page so timings are lock-dominated.
  {
    OpOutcome o;
    sim::Latch d(&sim_, 1);
    engine.Read(1, &o, &d);
    sim_.Run();
  }
  // Start an update (holds X lock through the WAL flush), then a read.
  OpOutcome uo, ro;
  sim::Latch ud(&sim_, 1), rd(&sim_, 1);
  SimTime t0 = sim_.now();
  engine.Update(1, 100, &uo, &ud);
  engine.Read(1, &ro, &rd);
  sim_.Run();
  // The read completed only after the update's commit (> flush latency).
  EXPECT_GT(sim_.now() - t0, engine.log().flushes() * 100L);
  EXPECT_TRUE(uo.ok);
  EXPECT_TRUE(ro.ok);
}

TEST_F(SqlEngineTest, ReadUncommittedSkipsLocks) {
  SqlEngineOptions opt;
  opt.read_uncommitted = true;
  SqlEngine engine = MakeEngine(opt);
  ASSERT_TRUE(engine.LoadRecord(1, 1024).ok());
  OpOutcome o;
  sim::Latch d(&sim_, 1);
  engine.Read(1, &o, &d);
  sim_.Run();
  EXPECT_TRUE(o.ok);
  EXPECT_EQ(engine.locks().total_acquisitions(), 0);
}

TEST_F(SqlEngineTest, CheckpointerFlushesDirtyPages) {
  SqlEngineOptions opt;
  opt.checkpoint_interval = 100 * kMillisecond;
  SqlEngine engine = MakeEngine(opt);
  for (uint64_t k = 0; k < 100; ++k) {
    ASSERT_TRUE(engine.LoadRecord(k, 1024).ok());
  }
  engine.Start();
  OpOutcome o;
  sim::Latch d(&sim_, 1);
  engine.Update(1, 100, &o, &d);
  sim_.Run(500 * kMillisecond);
  engine.Stop();
  EXPECT_GE(engine.checkpoints(), 1);
  EXPECT_EQ(engine.pool().dirty_count(), 0u);
}

TEST_F(SqlEngineTest, ScanReadsRangeInOrder) {
  SqlEngine engine = MakeEngine();
  for (uint64_t k = 0; k < 1000; ++k) {
    ASSERT_TRUE(engine.LoadRecord(k, 1024).ok());
  }
  OpOutcome o;
  sim::Latch d(&sim_, 1);
  engine.Scan(100, 50, &o, &d);
  sim_.Run();
  EXPECT_TRUE(o.ok);
  EXPECT_EQ(o.records, 50);
  EXPECT_GT(engine.disk_reads(), 0);
}

}  // namespace
}  // namespace elephant::sqlkv
