#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "docstore/mongod.h"
#include "docstore/sharding.h"
#include "sim/simulation.h"

namespace elephant::docstore {
namespace {

// --------------------------------------------------------------- mongod

class MongodTest : public ::testing::Test {
 protected:
  MongodTest() : node_(&sim_, 0, cluster::NodeConfig{}) {}

  Mongod MakeMongod(MongodOptions opt = {}) {
    return Mongod(&sim_, &node_, opt, "test-mongod");
  }

  sim::Simulation sim_;
  cluster::Node node_;
};

TEST_F(MongodTest, ReadHitVsFault) {
  Mongod m = MakeMongod();
  for (uint64_t k = 0; k < 1000; ++k) {
    ASSERT_TRUE(m.LoadDocument(k, 1024).ok());
  }
  sqlkv::OpOutcome o1;
  sim::Latch d1(&sim_, 1);
  SimTime t0 = sim_.now();
  m.Read(5, &o1, &d1);
  sim_.Run();
  SimTime cold = sim_.now() - t0;
  EXPECT_TRUE(o1.ok);
  // A cold mongo read faults 32 KB (plus the positioning penalty) —
  // noticeably more expensive than an 8 KB page read.
  EXPECT_GT(cold, 8 * kMillisecond);
  EXPECT_EQ(m.faults(), 1);
  sqlkv::OpOutcome o2;
  sim::Latch d2(&sim_, 1);
  t0 = sim_.now();
  m.Read(5, &o2, &d2);
  sim_.Run();
  EXPECT_LT(sim_.now() - t0, kMillisecond);
  EXPECT_EQ(m.faults(), 1);
}

TEST_F(MongodTest, WritesBlockEverything) {
  // The v1.8 global lock: an update's exclusive section (including its
  // page fault) delays a concurrent read of an UNRELATED key.
  MongodOptions opt;
  opt.update_move_fraction = 0;
  Mongod m = MakeMongod(opt);
  for (uint64_t k = 0; k < 1000; ++k) {
    ASSERT_TRUE(m.LoadDocument(k, 1024).ok());
  }
  sqlkv::OpOutcome uo, ro;
  sim::Latch ud(&sim_, 1), rd(&sim_, 1);
  m.Update(5, 100, &uo, &ud);  // cold fault under the exclusive lock
  m.Read(900, &ro, &rd);       // different key, also cold
  SimTime t0 = sim_.now();
  sim_.Run();
  EXPECT_TRUE(uo.ok);
  EXPECT_TRUE(ro.ok);
  // The read needed its own fault (~8 ms) but first waited for the
  // writer's fault: total >> one fault.
  EXPECT_GT(sim_.now() - t0, 16 * kMillisecond);
  EXPECT_GT(m.WriteLockFraction(), 0.2);
}

TEST_F(MongodTest, YieldOnFaultRestoresConcurrency) {
  MongodOptions opt;
  opt.update_move_fraction = 0;
  opt.yield_on_fault = true;
  Mongod m = MakeMongod(opt);
  for (uint64_t k = 0; k < 1000; ++k) {
    ASSERT_TRUE(m.LoadDocument(k, 1024).ok());
  }
  sqlkv::OpOutcome uo, ro;
  sim::Latch ud(&sim_, 1), rd(&sim_, 1);
  SimTime t0 = sim_.now();
  m.Update(5, 100, &uo, &ud);
  m.Read(900, &ro, &rd);
  sim_.Run();
  // Faults overlap now: both finish in roughly one fault time (the two
  // faults run on different spindles of the disk group).
  EXPECT_LT(sim_.now() - t0, 16 * kMillisecond);
}

TEST_F(MongodTest, InsertAllocatesWithoutRead) {
  Mongod m = MakeMongod();
  sqlkv::OpOutcome o;
  sim::Latch d(&sim_, 1);
  m.Insert(1, 1024, &o, &d);
  sim_.Run();
  EXPECT_TRUE(o.ok);
  EXPECT_EQ(m.faults(), 0);
  EXPECT_EQ(m.docs(), 1);
}

TEST_F(MongodTest, CrashWhenOverloaded) {
  MongodOptions opt;
  opt.crash_inflight_limit = 10;
  Mongod m = MakeMongod(opt);
  for (uint64_t k = 0; k < 100; ++k) {
    ASSERT_TRUE(m.LoadDocument(k, 1024).ok());
  }
  // Swamp the process with more concurrent point ops than the limit.
  std::vector<sqlkv::OpOutcome> outs(50);
  sim::Latch all(&sim_, 50);
  for (int i = 0; i < 50; ++i) {
    m.Update(static_cast<uint64_t>(i), 100, &outs[i], &all);
  }
  sim_.Run();
  EXPECT_TRUE(m.crashed());
  EXPECT_EQ(all.count(), 0);  // every latch fired (some ops failed)
}

TEST_F(MongodTest, NoWalNoDurability) {
  // The paper runs MongoDB without journaling: updates complete without
  // any log flush — only CPU + (possible) fault time.
  Mongod m = MakeMongod();
  ASSERT_TRUE(m.LoadDocument(1, 1024).ok());
  {
    sqlkv::OpOutcome o;
    sim::Latch d(&sim_, 1);
    m.Read(1, &o, &d);
    sim_.Run();  // warm the page
  }
  sqlkv::OpOutcome o;
  sim::Latch d(&sim_, 1);
  SimTime t0 = sim_.now();
  m.Update(1, 100, &o, &d);
  sim_.Run();
  // Possibly a document move (random write); but never a commit flush
  // on the log disk. Warm update without a move is sub-millisecond.
  EXPECT_LT(sim_.now() - t0, 15 * kMillisecond);
}

// --------------------------------------------------------- config/chunks

TEST(ConfigServerTest, SingleChunkInitially) {
  ConfigServer config(128, {});
  EXPECT_EQ(config.num_chunks(), 1u);
  EXPECT_EQ(config.Route(0), 0);
  EXPECT_EQ(config.Route(UINT64_MAX - 1), 0);
}

TEST(ConfigServerTest, PreSplitSpreadsChunksEvenly) {
  ConfigServer config(128, {});
  config.PreSplit(1280000, 1280);
  EXPECT_EQ(config.num_chunks(), 1280u);
  auto counts = config.ChunksPerShard();
  for (int c : counts) EXPECT_EQ(c, 10);
  // Order-preserving: consecutive keys in one chunk.
  EXPECT_EQ(config.Route(0), config.Route(999));
}

TEST(ConfigServerTest, RouteRangeTouchesFewShards) {
  ConfigServer config(128, {});
  config.PreSplit(1280000, 1280);
  // A short range fits in one (or two) chunks — the Mongo-AS workload E
  // advantage.
  auto shards = config.RouteRange(5000, 5100);
  EXPECT_LE(shards.size(), 2u);
  // A huge range touches many shards.
  auto wide = config.RouteRange(0, 1280000);
  EXPECT_EQ(wide.size(), 128u);
}

TEST(ConfigServerTest, InsertsSplitChunks) {
  ConfigServer::Options opt;
  opt.max_chunk_bytes = 10 * 1024;
  ConfigServer config(4, opt);
  config.PreSplit(10000, 4);
  size_t before = config.num_chunks();
  bool split = false;
  for (uint64_t k = 0; k < 50; ++k) {
    split |= config.NoteInsert(k, 1024);
  }
  EXPECT_TRUE(split);
  EXPECT_GT(config.num_chunks(), before);
  EXPECT_GT(config.splits(), 0);
}

TEST(ConfigServerTest, BalancerMovesChunksFromLoadedShards) {
  ConfigServer::Options opt;
  opt.max_chunk_bytes = 2 * 1024;
  opt.migration_threshold = 4;
  ConfigServer config(2, opt);
  // Everything lands on shard 0's single chunk and splits repeatedly.
  for (uint64_t k = 0; k < 100; ++k) {
    config.NoteInsert(k * 1000, 1024);
  }
  auto before = config.ChunksPerShard();
  EXPECT_EQ(before[1], 0);
  auto migrations = config.BalanceOnce();
  ASSERT_EQ(migrations.size(), 1u);
  EXPECT_EQ(migrations[0].from, 0);
  EXPECT_EQ(migrations[0].to, 1);
  auto after = config.ChunksPerShard();
  EXPECT_EQ(after[1], 1);
  EXPECT_EQ(config.migrations(), 1);
}

TEST(ConfigServerTest, BalancerIdleWhenBalanced) {
  ConfigServer config(4, {});
  config.PreSplit(1000, 8);
  EXPECT_TRUE(config.BalanceOnce().empty());
}

TEST(ConfigServerTest, AppendsAllRouteToLastChunk) {
  // The root cause of the Mongo-AS workload D/E append hotspot: every
  // key beyond the pre-split range lands in the final chunk.
  ConfigServer config(128, {});
  config.PreSplit(128000, 1280);
  int shard = config.Route(200000);
  for (uint64_t k = 200001; k < 200100; ++k) {
    EXPECT_EQ(config.Route(k), shard);
  }
}

}  // namespace
}  // namespace elephant::docstore
