// Tests for segment-backed (frozen) base tables and the
// direct-on-encoded scan kernels (DESIGN.md §17): freeze/thaw
// round-trips, streaming builder equivalence, fused-scan bit-identity
// across the frozen / resident / decode-first paths, kernel property
// tests against the decode-first oracle, and dbgen's freeze mode.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <memory>
#include <limits>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "exec/compress.h"
#include "exec/encoded_scan.h"
#include "exec/frozen.h"
#include "exec/fused.h"
#include "exec/operators.h"
#include "exec/segcache.h"
#include "exec/table.h"
#include "exec/zonemap.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

namespace elephant::exec {
namespace {

/// Restores every global knob the suite twiddles.
class FrozenTableTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_budget_ = ExecMemoryBudget();
    saved_threads_ = ExecThreads();
  }
  void TearDown() override {
    SetExecMemoryBudget(saved_budget_);
    SetExecThreads(saved_threads_);
    SetExecFusedPath(true);
    SetExecEncodedScanPath(true);
  }

 private:
  size_t saved_budget_ = 0;
  int saved_threads_ = 0;
};

/// Mixed-type table: ascending int key, adversarial doubles (NaN
/// payloads and signed zeros sprinkled in), small-domain strings.
Table MakeMixedTable(size_t n, uint64_t seed = 0xF7E12) {
  Table t({{"k", ValueType::kInt},
           {"v", ValueType::kDouble},
           {"s", ValueType::kString}});
  Rng rng(seed);
  const char* tags[] = {"alpha", "beta", "gamma", "delta"};
  for (size_t i = 0; i < n; ++i) {
    double v;
    if (i % 97 == 13) {
      v = std::numeric_limits<double>::quiet_NaN();
    } else if (i % 31 == 7) {
      v = (i % 2 == 0) ? 0.0 : -0.0;
    } else {
      v = rng.NextDouble() * 1e6 - 5e5;
    }
    t.AddRow({Value{static_cast<int64_t>(i)}, Value{v},
              Value{std::string(tags[rng.Uniform(4)])}});
  }
  return t;
}

TEST_F(FrozenTableTest, FreezeRoundTripIsBitExact) {
  Table t = MakeMixedTable(10000);
  const uint64_t fp = TableFingerprint(t);

  Table f = t;
  f.Freeze();
  ASSERT_TRUE(f.is_frozen());
  ASSERT_NE(f.frozen_data(), nullptr);
  EXPECT_GT(f.frozen_data()->EncodedBytes(), 0u);
  // Fingerprinting reads every column (thawing them); content and
  // interned codes must be untouched by the encode/decode round trip.
  EXPECT_EQ(TableFingerprint(f), fp);
  EXPECT_TRUE(f.is_frozen());

  // Dropping residency and re-reading decodes again — same bytes.
  f.ReleaseResident();
  EXPECT_EQ(TableFingerprint(f), fp);

  // Copies share the frozen chunks and stay independent.
  Table g = f;
  f.ReleaseResident();
  EXPECT_EQ(TableFingerprint(g), fp);
  EXPECT_EQ(TableFingerprint(f), fp);
}

TEST_F(FrozenTableTest, FreezeSurvivesTightBudgetSpill) {
  SetExecMemoryBudget(1 << 16);  // 64 KB: forces segment-cache spilling
  Table t = MakeMixedTable(20000);
  const uint64_t fp = TableFingerprint(t);
  Table f = t;
  f.Freeze();
  f.ReleaseResident();
  EXPECT_EQ(TableFingerprint(f), fp);
}

std::vector<RowBatch> MixedBatches(const std::vector<Column>& schema,
                                   size_t rows, size_t batch_rows) {
  Rng rng(0xBA7C4);
  const char* tags[] = {"red", "green", "blue"};
  std::vector<RowBatch> out;
  for (size_t lo = 0; lo < rows; lo += batch_rows) {
    const size_t hi = std::min(rows, lo + batch_rows);
    RowBatch b(schema);
    b.ReserveRows(hi - lo);
    for (size_t i = lo; i < hi; ++i) {
      b.AddInt(0, static_cast<int64_t>(i * 3));  // ascending
      b.AddDouble(1, i % 89 == 5 ? std::numeric_limits<double>::quiet_NaN()
                                 : rng.NextDouble() * 100.0);
      b.AddString(2, tags[rng.Uniform(3)]);
    }
    out.push_back(std::move(b));
  }
  return out;
}

TEST_F(FrozenTableTest, BuilderMatchesResidentAppendBatch) {
  const std::vector<Column> schema = {{"k", ValueType::kInt},
                                      {"v", ValueType::kDouble},
                                      {"s", ValueType::kString}};
  // Ragged batches that straddle seal boundaries in every alignment.
  for (size_t rows : {size_t{0}, size_t{1}, size_t{333}, size_t{9000}}) {
    Table resident(schema);
    for (RowBatch& b : MixedBatches(schema, rows, 777)) {
      resident.AppendBatch(std::move(b));
    }

    FrozenTableBuilder builder(schema);
    for (RowBatch& b : MixedBatches(schema, rows, 777)) {
      builder.Append(std::move(b));
    }
    Table frozen = builder.Finish();
    ASSERT_TRUE(frozen.is_frozen());
    EXPECT_EQ(frozen.num_rows(), rows);

    // Same logical content, same dictionary codes (serial interning in
    // batch order on both paths).
    EXPECT_EQ(TableFingerprint(frozen), TableFingerprint(resident))
        << rows << " rows";

    // The pre-attached zone maps validate against the thawed data and
    // agree with the resident build on the verified sorted flags.
    std::shared_ptr<const ZoneMaps> zm = GetZoneMaps(frozen);
    ASSERT_NE(zm, nullptr);
    EXPECT_TRUE(ValidateZoneMaps(frozen, *zm).ok()) << rows << " rows";
    std::shared_ptr<const ZoneMaps> rzm = GetZoneMaps(resident);
    ASSERT_NE(rzm, nullptr);
    for (size_t c = 0; c < zm->cols.size(); ++c) {
      EXPECT_EQ(zm->cols[c].sorted_asc, rzm->cols[c].sorted_asc)
          << rows << " rows, col " << c;
    }
  }
}

TEST_F(FrozenTableTest, MutationDetachesFrozenState) {
  Table f = MakeMixedTable(5000);
  Table r = f;
  f.Freeze();
  f.ReleaseResident();
  ASSERT_TRUE(f.is_frozen());

  const std::vector<Value> row = {Value{int64_t{123456}}, Value{7.5},
                                  Value{std::string("beta")}};
  f.AddRow(row);
  EXPECT_FALSE(f.is_frozen());
  r.AddRow(row);
  EXPECT_EQ(TableFingerprint(f), TableFingerprint(r));
}

TEST_F(FrozenTableTest, ConcurrentThawIsSafeAndExact) {
  Table t = MakeMixedTable(20000);
  Table f = t;
  f.Freeze();
  f.ReleaseResident();

  // 8 readers hammer all three accessors at once: publish-once thawing
  // must hand every reader the same fully decoded columns.
  std::atomic<uint64_t> key_sum{0};
  std::atomic<uint64_t> code_sum{0};
  std::atomic<int> bad{0};
  std::vector<std::thread> workers;
  for (int w = 0; w < 8; ++w) {
    workers.emplace_back([&]() {
      const std::vector<int64_t>& ks = f.IntData(0);
      const std::vector<double>& vs = f.DoubleData(1);
      const std::vector<uint32_t>& cs = f.StrCodes(2);
      if (ks.size() != 20000 || vs.size() != 20000 || cs.size() != 20000) {
        bad.fetch_add(1);
        return;
      }
      uint64_t k = 0, c = 0;
      for (size_t i = 0; i < ks.size(); ++i) {
        k += static_cast<uint64_t>(ks[i]);
        c += cs[i];
      }
      key_sum.fetch_add(k);
      code_sum.fetch_add(c);
    });
  }
  for (std::thread& w : workers) w.join();
  ASSERT_EQ(bad.load(), 0);

  uint64_t want_k = 0, want_c = 0;
  for (size_t i = 0; i < t.num_rows(); ++i) {
    want_k += static_cast<uint64_t>(t.IntData(0)[i]);
    want_c += t.StrCodes(2)[i];
  }
  EXPECT_EQ(key_sum.load(), want_k * 8);
  EXPECT_EQ(code_sum.load(), want_c * 8);
}

// ---- Fused scans over frozen tables --------------------------------------

std::vector<ScanSpec> SpecsFor(const Table& t) {
  std::vector<ScanSpec> specs;
  specs.push_back(SpecOf(ColRange(t, "k", 1000, 5000)));
  specs.push_back(SpecOf(ColRange(t, "k", 1000, 5000, true, true)));
  specs.push_back(SpecOf(ColLess(t, "v", 0.0)));
  specs.push_back(SpecOf(ColAtLeast(t, "v", 499000.0)));
  specs.push_back(SpecOf(ColEquals(t, "v", 0.0)));  // hits +/-0.0
  specs.push_back(SpecOf(CodeEquals(t, "s", "beta")));
  specs.push_back(SpecOf(ColRange(t, "k", 20001, 30000)));  // empty
  ScanSpec conj;
  conj.ranges.push_back(ColRange(t, "k", 500, 15000));
  conj.ranges.push_back(ColAtLeast(t, "v", 0.0));
  conj.codes.push_back(CodeMatch(t, "s", [](const std::string& s) {
    return s == "alpha" || s == "delta";
  }));
  specs.push_back(std::move(conj));
  return specs;
}

TEST_F(FrozenTableTest, FusedSelectFrozenMatchesResidentAndOracle) {
  Table t = MakeMixedTable(20000);
  const std::vector<ScanSpec> specs = SpecsFor(t);
  for (int threads : {1, 8}) {
    SetExecThreads(threads);
    for (size_t i = 0; i < specs.size(); ++i) {
      const std::vector<uint32_t> expect = FusedSelect(t, specs[i]);

      Table f = t;
      f.Freeze();
      f.ReleaseResident();
      SetExecEncodedScanPath(true);
      const std::vector<uint32_t> enc = FusedSelect(f, specs[i]);
      EXPECT_EQ(enc, expect) << "spec " << i << " threads " << threads
                             << " (encoded)";

      f.ReleaseResident();
      SetExecEncodedScanPath(false);
      const std::vector<uint32_t> dec = FusedSelect(f, specs[i]);
      EXPECT_EQ(dec, expect) << "spec " << i << " threads " << threads
                             << " (decode-first)";
      SetExecEncodedScanPath(true);

      // Row-at-a-time oracle on the frozen table (thaws).
      f.ReleaseResident();
      SetExecFusedPath(false);
      const std::vector<uint32_t> oracle = FusedSelect(f, specs[i]);
      SetExecFusedPath(true);
      EXPECT_EQ(oracle, expect) << "spec " << i << " threads " << threads
                                << " (oracle)";
    }
  }
}

TEST_F(FrozenTableTest, FrozenScanPinsOnlySurvivingChunks) {
  Table t = MakeMixedTable(20000);
  Table f = t;
  f.Freeze();
  f.ReleaseResident();

  // k is verified-sorted and ascending: a narrow range prunes almost
  // every chunk, and pruned chunks must never touch the encoded bytes.
  ResetEncodedScanCounters();
  ResetFusedCounters();
  const std::vector<uint32_t> sel =
      FusedSelect(f, SpecOf(ColRange(t, "k", 100, 200)));
  EXPECT_EQ(sel.size(), 101u);
  const FusedCounters fc = FusedCountersSnapshot();
  const EncodedScanCounters ec = EncodedScanCountersSnapshot();
  EXPECT_GT(fc.sorted_bounded, 0u);
  // Direct path on; nothing should have gone through the decode oracle,
  // and at most the chunks overlapping [100, 200] were evaluated.
  EXPECT_EQ(ec.chunks_decoded, 0u);
  EXPECT_LE(ec.chunks_direct, 2u);
  // The scan never thawed anything.
  EXPECT_TRUE(f.is_frozen());
  EXPECT_FALSE(f.ColumnResident(0));
}

// ---- Direct-on-encoded kernels vs the decode-first oracle ----------------

std::vector<int64_t> IntShape(const std::string& shape, size_t n) {
  Rng rng(0xC0DE7);
  std::vector<int64_t> v;
  v.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (shape == "constant") {
      v.push_back(42);
    } else if (shape == "runs") {
      v.push_back(static_cast<int64_t>(i / 16));
    } else if (shape == "ascending") {
      v.push_back(static_cast<int64_t>(i) + 1000000);
    } else if (shape == "negatives") {
      v.push_back(-static_cast<int64_t>(rng.Uniform(1 << 20)) - 1);
    } else if (shape == "wide") {
      v.push_back(static_cast<int64_t>(rng.Next()));  // forces w > 32
    } else {  // small_random
      v.push_back(static_cast<int64_t>(rng.Uniform(1 << 10)));
    }
  }
  return v;
}

std::vector<double> DoubleShape(const std::string& shape, size_t n) {
  Rng rng(0xD0B1E);
  std::vector<double> v;
  v.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (shape == "nan_runs") {
      v.push_back(i % 8 < 4 ? std::numeric_limits<double>::quiet_NaN()
                            : 1.5);
    } else if (shape == "signed_zero") {
      v.push_back(i % 2 == 0 ? 0.0 : -0.0);
    } else if (shape == "runs") {
      v.push_back(static_cast<double>(i / 16));
    } else {  // random
      v.push_back(rng.NextDouble() * 1e6 - 5e5);
    }
  }
  return v;
}

std::vector<NumRange> RangesFor(double lo, double hi) {
  const double mid = lo + (hi - lo) / 2;
  std::vector<NumRange> rs;
  NumRange all;
  rs.push_back(all);  // full line
  NumRange below;
  below.hi = lo;
  below.hi_strict = true;
  rs.push_back(below);  // matches nothing (except NaN never matches)
  NumRange half;
  half.lo = mid;
  rs.push_back(half);
  NumRange strict;
  strict.lo = mid;
  strict.lo_strict = true;
  strict.hi = hi;
  strict.hi_strict = true;
  rs.push_back(strict);
  NumRange point;
  point.lo = mid;
  point.hi = mid;
  rs.push_back(point);
  NumRange zero;  // +/-0.0 probe
  zero.lo = 0.0;
  zero.hi = 0.0;
  rs.push_back(zero);
  return rs;
}

/// Primes bits with an alternating pattern so the AND semantics (not
/// just the match computation) are exercised.
std::vector<uint8_t> PrimedBits(size_t n) {
  std::vector<uint8_t> bits(n);
  for (size_t i = 0; i < n; ++i) bits[i] = i % 3 == 0 ? 0 : 1;
  return bits;
}

TEST(EncodedScanKernelTest, IntRangeMatchesOracleAcrossCodecs) {
  for (const std::string& shape :
       {std::string("constant"), std::string("runs"),
        std::string("ascending"), std::string("negatives"),
        std::string("wide"), std::string("small_random")}) {
    for (size_t n : {size_t{1}, size_t{2}, size_t{63}, size_t{64},
                     size_t{100}, size_t{1000}, size_t{4096}}) {
      std::vector<int64_t> v = IntShape(shape, n);
      const int64_t mn = *std::min_element(v.begin(), v.end());
      const int64_t mx = *std::max_element(v.begin(), v.end());
      for (Codec c : {Codec::kPlain, Codec::kRle, Codec::kBitPack,
                      Codec::kFor}) {
        if (c == Codec::kBitPack && mn < 0) continue;
        EncodedChunk e = EncodeInt64Chunk(v.data(), n, c);
        ChunkView view = MakeChunkView(e);
        const std::vector<uint8_t> primed = PrimedBits(n);
        std::vector<int64_t> plain(n);
        DecodeInt64Chunk(e, plain.data());
        for (const NumRange& r :
             RangesFor(static_cast<double>(mn), static_cast<double>(mx))) {
          std::vector<uint8_t> direct = primed;
          EncodedRangeAnd(view, r, direct.data());
          std::vector<uint8_t> oracle = primed;
          ChunkScratch scratch;
          DecodedRangeAnd(view, r, oracle.data(), &scratch);
          ASSERT_EQ(direct, oracle)
              << shape << " n=" << n << " codec=" << CodecName(c);
          // Third opinion: scalar loop over the decoded values.
          for (size_t i = 0; i < n; ++i) {
            const uint8_t want =
                primed[i] &
                static_cast<uint8_t>(
                    r.Matches(static_cast<double>(plain[i])) ? 1 : 0);
            ASSERT_EQ(direct[i], want)
                << shape << " n=" << n << " codec=" << CodecName(c)
                << " row " << i;
          }
        }
      }
    }
  }
}

TEST(EncodedScanKernelTest, DoubleRangeMatchesOracleWithNaNAndSignedZero) {
  for (const std::string& shape :
       {std::string("nan_runs"), std::string("signed_zero"),
        std::string("runs"), std::string("random")}) {
    for (size_t n : {size_t{1}, size_t{100}, size_t{4096}}) {
      std::vector<double> v = DoubleShape(shape, n);
      for (Codec c : {Codec::kPlain, Codec::kRle}) {
        EncodedChunk e = EncodeDoubleChunk(v.data(), n, c);
        ChunkView view = MakeChunkView(e);
        const std::vector<uint8_t> primed = PrimedBits(n);
        for (const NumRange& r : RangesFor(-5e5, 5e5)) {
          std::vector<uint8_t> direct = primed;
          EncodedRangeAnd(view, r, direct.data());
          std::vector<uint8_t> oracle = primed;
          ChunkScratch scratch;
          DecodedRangeAnd(view, r, oracle.data(), &scratch);
          ASSERT_EQ(direct, oracle)
              << shape << " n=" << n << " codec=" << CodecName(c);
          for (size_t i = 0; i < n; ++i) {
            const uint8_t want =
                primed[i] & static_cast<uint8_t>(r.Matches(v[i]) ? 1 : 0);
            ASSERT_EQ(direct[i], want) << shape << " row " << i;
          }
        }
      }
    }
  }
}

TEST(EncodedScanKernelTest, CodeSetMatchesOracleAcrossCodecs) {
  Rng rng(0x5EED);
  for (size_t domain : {size_t{1}, size_t{3}, size_t{200}}) {
    for (size_t n : {size_t{1}, size_t{100}, size_t{4096}}) {
      std::vector<uint32_t> v;
      v.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        v.push_back(static_cast<uint32_t>(rng.Uniform(domain)));
      }
      for (Codec c : {Codec::kPlain, Codec::kRle, Codec::kBitPack,
                      Codec::kFor}) {
        EncodedChunk e = EncodeCodeChunk(v.data(), n, c);
        ChunkView view = MakeChunkView(e);
        // Every-other-code match table plus the all-off edge.
        const std::vector<uint8_t> primed = PrimedBits(n);
        for (int mode = 0; mode < 2; ++mode) {
          std::vector<char> match(domain, 0);
          if (mode == 0) {
            for (size_t k = 0; k < domain; k += 2) match[k] = 1;
          }
          std::vector<uint8_t> direct = primed;
          EncodedCodeAnd(view, match.data(), direct.data());
          std::vector<uint8_t> oracle = primed;
          ChunkScratch scratch;
          DecodedCodeAnd(view, match.data(), oracle.data(), &scratch);
          ASSERT_EQ(direct, oracle) << "domain=" << domain << " n=" << n
                                    << " codec=" << CodecName(c);
          for (size_t i = 0; i < n; ++i) {
            const uint8_t want =
                primed[i] & static_cast<uint8_t>(match[v[i]]);
            ASSERT_EQ(direct[i], want) << "row " << i;
          }
        }
      }
    }
  }
}

// ---- dbgen freeze mode ---------------------------------------------------

uint64_t DbFingerprint(const tpch::TpchDatabase& db) {
  uint64_t h = 1469598103934665603ULL;
  for (const Table* t :
       {&db.region, &db.nation, &db.supplier, &db.part, &db.partsupp,
        &db.customer, &db.orders, &db.lineitem}) {
    h = (h ^ TableFingerprint(*t)) * 1099511628211ULL;
  }
  return h;
}

TEST_F(FrozenTableTest, DbgenFreezeMatchesResidentBitForBit) {
  tpch::DbgenOptions resident;
  resident.freeze = 0;
  resident.threads = 2;
  const tpch::TpchDatabase dbr = tpch::GenerateDatabase(0.01, resident);

  tpch::DbgenOptions frozen = resident;
  frozen.freeze = 1;
  tpch::TpchDatabase dbf = tpch::GenerateDatabase(0.01, frozen);
  EXPECT_TRUE(dbf.lineitem.is_frozen());
  EXPECT_TRUE(dbf.orders.is_frozen());
  EXPECT_TRUE(dbf.customer.is_frozen());
  EXPECT_FALSE(dbf.region.is_frozen());
  // Zone maps were pre-attached by the streaming builder, with the
  // clustered primary keys verified sorted.
  std::shared_ptr<const ZoneMaps> zm = GetZoneMaps(dbf.lineitem);
  ASSERT_NE(zm, nullptr);
  EXPECT_TRUE(zm->cols[0].sorted_asc);  // l_orderkey

  // Same logical database, including dictionary code assignment.
  EXPECT_EQ(DbFingerprint(dbf), DbFingerprint(dbr));

  // Frozen generation is thread-count invariant too.
  tpch::DbgenOptions frozen1 = frozen;
  frozen1.threads = 1;
  const tpch::TpchDatabase dbf1 = tpch::GenerateDatabase(0.01, frozen1);
  EXPECT_EQ(DbFingerprint(dbf1), DbFingerprint(dbr));
}

TEST_F(FrozenTableTest, QueriesBitIdenticalAcrossBudgetThreadsAndPaths) {
  tpch::DbgenOptions resident;
  resident.freeze = 0;
  const tpch::TpchDatabase dbr = tpch::GenerateDatabase(0.01, resident);

  tpch::DbgenOptions frozen;
  frozen.freeze = 1;
  tpch::TpchDatabase dbf = tpch::GenerateDatabase(0.01, frozen);

  auto release_all = [&dbf]() {
    for (Table* t : {&dbf.supplier, &dbf.part, &dbf.partsupp, &dbf.customer,
                     &dbf.orders, &dbf.lineitem}) {
      t->ReleaseResident();
    }
  };

  for (int q : {1, 6, 12, 14}) {
    const uint64_t want = TableFingerprint(tpch::RunQuery(q, dbr));
    for (int threads : {1, 8}) {
      for (size_t budget : {size_t{0}, size_t{32} << 20}) {
        SetExecThreads(threads);
        SetExecMemoryBudget(budget);
        release_all();
        const Table got = tpch::RunQuery(q, dbf);
        EXPECT_EQ(TableFingerprint(got), want)
            << "Q" << q << " threads=" << threads << " budget=" << budget;
      }
    }
  }
}

}  // namespace
}  // namespace elephant::exec
