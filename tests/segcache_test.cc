#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "exec/segcache.h"

namespace elephant::exec {
namespace {

std::vector<uint8_t> Payload(uint8_t fill, size_t n) {
  return std::vector<uint8_t>(n, fill);
}

/// Every test drives its own cache instance; the Global() cache belongs
/// to the spilling operators.
class SegmentCacheTest : public ::testing::Test {
 protected:
  SegmentCache cache_;
};

TEST(ParseByteSizeTest, UnitsAndErrors) {
  EXPECT_EQ(ParseByteSize("4096").value(), 4096u);
  EXPECT_EQ(ParseByteSize("4096B").value(), 4096u);
  EXPECT_EQ(ParseByteSize("64K").value(), 64u << 10);
  EXPECT_EQ(ParseByteSize("64kb").value(), 64u << 10);
  EXPECT_EQ(ParseByteSize("64MB").value(), 64u << 20);
  EXPECT_EQ(ParseByteSize("1gb").value(), 1u << 30);
  EXPECT_EQ(ParseByteSize("2 GB").value(), size_t{2} << 30);
  EXPECT_FALSE(ParseByteSize("").ok());
  EXPECT_FALSE(ParseByteSize("MB").ok());
  EXPECT_FALSE(ParseByteSize("12XB").ok());
}

TEST_F(SegmentCacheTest, InsertPinRoundTrip) {
  cache_.SetBudget(0);  // unlimited: nothing ever evicts
  Result<SegmentCache::Id> id = cache_.Insert(Payload(0xAB, 100));
  ASSERT_TRUE(id.ok());
  auto data = cache_.Pin(id.value());
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data.value()->size(), 100u);
  EXPECT_EQ((*data.value())[0], 0xAB);
  cache_.Unpin(id.value());
  SegmentCache::Stats s = cache_.GetStats();
  EXPECT_EQ(s.inserts, 1u);
  EXPECT_EQ(s.evictions, 0u);
  EXPECT_EQ(s.resident_bytes, 100u);
  EXPECT_EQ(s.entries, 1u);
}

TEST_F(SegmentCacheTest, EvictsToBudgetAndReloads) {
  cache_.SetBudget(256);
  std::vector<SegmentCache::Id> ids;
  for (int i = 0; i < 4; ++i) {
    Result<SegmentCache::Id> id = cache_.Insert(Payload(uint8_t(i), 100));
    ASSERT_TRUE(id.ok());
    ids.push_back(id.value());
  }
  SegmentCache::Stats s = cache_.GetStats();
  EXPECT_GT(s.evictions, 0u);
  EXPECT_LE(s.resident_bytes, 256u);
  EXPECT_EQ(s.entries, 4u);
  EXPECT_GT(s.spill_bytes_written, 0u);
  // Pinning any segment returns its exact bytes whether it was resident
  // or spilled.
  for (int i = 0; i < 4; ++i) {
    auto data = cache_.Pin(ids[i]);
    ASSERT_TRUE(data.ok()) << i;
    EXPECT_EQ(data.value()->size(), 100u);
    EXPECT_EQ((*data.value())[7], uint8_t(i));
    cache_.Unpin(ids[i]);
  }
  EXPECT_GT(cache_.GetStats().spill_bytes_read, 0u);
}

TEST_F(SegmentCacheTest, PinnedSegmentsAreNeverEvicted) {
  cache_.SetBudget(150);
  Result<SegmentCache::Id> a = cache_.Insert(Payload(1, 100));
  ASSERT_TRUE(a.ok());
  auto pinned = cache_.Pin(a.value());
  ASSERT_TRUE(pinned.ok());
  // Inserting b pushes residency to 200 > 150; only b is evictable.
  Result<SegmentCache::Id> b = cache_.Insert(Payload(2, 100));
  ASSERT_TRUE(b.ok());
  auto again = cache_.Pin(a.value());
  ASSERT_TRUE(again.ok());
  SegmentCache::Stats s = cache_.GetStats();
  // a's bytes never went to disk: every eviction hit b.
  EXPECT_EQ(s.spill_bytes_read, 0u);
  cache_.Unpin(a.value());
  cache_.Unpin(a.value());
}

TEST_F(SegmentCacheTest, CleanOnDiskCopyIsWrittenOnce) {
  cache_.SetBudget(100);
  Result<SegmentCache::Id> a = cache_.Insert(Payload(1, 80));
  ASSERT_TRUE(a.ok());
  Result<SegmentCache::Id> b = cache_.Insert(Payload(2, 80));
  ASSERT_TRUE(b.ok());
  uint64_t written_once = cache_.GetStats().spill_bytes_written;
  EXPECT_EQ(written_once, 80u);  // a spilled to make room for b
  // Reload a (evicting b), then reload b (re-evicting a). a's payload
  // is immutable and already on disk, so no second write of a happens.
  ASSERT_TRUE(cache_.Pin(a.value()).ok());
  cache_.Unpin(a.value());
  ASSERT_TRUE(cache_.Pin(b.value()).ok());
  cache_.Unpin(b.value());
  SegmentCache::Stats s = cache_.GetStats();
  EXPECT_EQ(s.spill_bytes_written, 160u);  // a once + b once, never again
  EXPECT_GE(s.evictions, 3u);
}

TEST_F(SegmentCacheTest, RemoveRecyclesSlotsDeterministically) {
  cache_.SetBudget(100);
  Result<SegmentCache::Id> a = cache_.Insert(Payload(1, 80));
  Result<SegmentCache::Id> b = cache_.Insert(Payload(2, 80));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  cache_.Remove(a.value());
  cache_.Remove(b.value());
  // The freed file slot is reused for an equal-sized segment: total
  // spill writes grow, entries stay bounded.
  Result<SegmentCache::Id> c = cache_.Insert(Payload(3, 80));
  Result<SegmentCache::Id> d = cache_.Insert(Payload(4, 80));
  ASSERT_TRUE(c.ok());
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(cache_.GetStats().entries, 2u);
  auto data = cache_.Pin(c.value());
  ASSERT_TRUE(data.ok());
  EXPECT_EQ((*data.value())[0], 3u);
  cache_.Unpin(c.value());
}

TEST_F(SegmentCacheTest, StatsAreDeterministicAcrossRepeats) {
  auto run = [this]() {
    cache_.Clear();
    cache_.SetBudget(300);
    std::vector<SegmentCache::Id> ids;
    for (int i = 0; i < 8; ++i) {
      Result<SegmentCache::Id> id =
          cache_.Insert(Payload(uint8_t(i), 64 + 8 * (i % 3)));
      ASSERT_TRUE(id.ok());
      ids.push_back(id.value());
    }
    for (int i = 7; i >= 0; --i) {
      auto d = cache_.Pin(ids[i]);
      ASSERT_TRUE(d.ok());
      cache_.Unpin(ids[i]);
    }
  };
  run();
  SegmentCache::Stats first = cache_.GetStats();
  run();
  SegmentCache::Stats second = cache_.GetStats();
  EXPECT_EQ(first.inserts, second.inserts);
  EXPECT_EQ(first.evictions, second.evictions);
  EXPECT_EQ(first.spill_bytes_written, second.spill_bytes_written);
  EXPECT_EQ(first.spill_bytes_read, second.spill_bytes_read);
  EXPECT_EQ(first.resident_bytes, second.resident_bytes);
}

TEST_F(SegmentCacheTest, InjectedWriteFaultSurfacesOnInsert) {
  cache_.SetBudget(100);
  Result<SegmentCache::Id> a = cache_.Insert(Payload(1, 80));
  ASSERT_TRUE(a.ok());
  cache_.InjectSpillErrors(1);
  // Inserting b forces a's eviction, whose spill write fails; the
  // insert surfaces the error and b is not retained.
  uint64_t entries_before = cache_.GetStats().entries;
  Result<SegmentCache::Id> b = cache_.Insert(Payload(2, 80));
  EXPECT_FALSE(b.ok());
  EXPECT_EQ(cache_.GetStats().entries, entries_before);
  // Disarmed after consuming the fault: the next insert succeeds.
  Result<SegmentCache::Id> c = cache_.Insert(Payload(3, 80));
  EXPECT_TRUE(c.ok());
}

TEST_F(SegmentCacheTest, InjectedReadFaultSurfacesOnPin) {
  cache_.SetBudget(100);
  Result<SegmentCache::Id> a = cache_.Insert(Payload(1, 80));
  Result<SegmentCache::Id> b = cache_.Insert(Payload(2, 80));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());  // a is now on disk
  cache_.InjectSpillErrors(1);
  Result<std::shared_ptr<const std::vector<uint8_t>>> pin =
      cache_.Pin(a.value());
  EXPECT_FALSE(pin.ok());
  EXPECT_EQ(cache_.GetStats().pinned, 0u);
  // The segment is still intact on disk once faults are exhausted.
  auto retry = cache_.Pin(a.value());
  ASSERT_TRUE(retry.ok());
  EXPECT_EQ((*retry.value())[0], 1u);
  cache_.Unpin(a.value());
}

TEST_F(SegmentCacheTest, ZeroBudgetNeverEvicts) {
  cache_.SetBudget(0);
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(cache_.Insert(Payload(uint8_t(i), 1024)).ok());
  }
  SegmentCache::Stats s = cache_.GetStats();
  EXPECT_EQ(s.evictions, 0u);
  EXPECT_EQ(s.resident_bytes, 16u * 1024u);
}

TEST_F(SegmentCacheTest, ConcurrentPinUnpinChurnStaysCoherent) {
  // Budget sized well below the working set: every thread's pins race
  // with the others' eviction sweeps and spill reloads. Run under TSan
  // this doubles as the pin/unpin/evict interleaving check.
  cache_.SetBudget(512);
  constexpr int kSegments = 24;
  constexpr int kThreads = 8;
  constexpr int kIters = 400;
  std::vector<SegmentCache::Id> ids;
  for (int i = 0; i < kSegments; ++i) {
    Result<SegmentCache::Id> id = cache_.Insert(Payload(uint8_t(i), 64));
    ASSERT_TRUE(id.ok());
    ids.push_back(id.value());
  }
  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([this, &ids, &failures, t]() {
      Rng rng(0xC0C0A + uint64_t(t));
      for (int i = 0; i < kIters; ++i) {
        const int pick = static_cast<int>(rng.Uniform(kSegments));
        auto pin = cache_.Pin(ids[pick]);
        if (!pin.ok()) {
          failures.fetch_add(1);
          continue;
        }
        if (pin.value()->size() != 64 ||
            (*pin.value())[0] != uint8_t(pick)) {
          failures.fetch_add(1);
        }
        cache_.Unpin(ids[pick]);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(failures.load(), 0);
  SegmentCache::Stats s = cache_.GetStats();
  EXPECT_EQ(s.pinned, 0u);
  EXPECT_EQ(s.entries, size_t{kSegments});
  EXPECT_GT(s.spill_bytes_read, 0u);
  // Every segment still round-trips exactly after the churn.
  for (int i = 0; i < kSegments; ++i) {
    auto data = cache_.Pin(ids[i]);
    ASSERT_TRUE(data.ok()) << i;
    EXPECT_EQ((*data.value())[0], uint8_t(i));
    cache_.Unpin(ids[i]);
  }
}

TEST_F(SegmentCacheTest, DiscardToleratesUnknownIds) {
  cache_.SetBudget(0);
  Result<SegmentCache::Id> a = cache_.Insert(Payload(1, 32));
  ASSERT_TRUE(a.ok());
  EXPECT_TRUE(cache_.Discard(a.value()));
  EXPECT_FALSE(cache_.Discard(a.value()));  // second discard: no-op
  EXPECT_FALSE(cache_.Discard(SegmentCache::Id{987654}));
  EXPECT_EQ(cache_.GetStats().entries, 0u);
}

TEST(ExecMemoryBudgetTest, SetterResizesGlobalCacheToHalf) {
  size_t before = ExecMemoryBudget();
  SetExecMemoryBudget(128 << 20);
  EXPECT_EQ(ExecMemoryBudget(), size_t{128} << 20);
  EXPECT_EQ(SegmentCache::Global().Budget(), size_t{64} << 20);
  SetExecMemoryBudget(0);
  EXPECT_EQ(ExecMemoryBudget(), 0u);
  EXPECT_EQ(SegmentCache::Global().Budget(), 0u);
  SetExecMemoryBudget(before);
}

}  // namespace
}  // namespace elephant::exec
