// The working RCFile-style columnar format: round trips, error handling,
// and the calibration check that the measured compression ratios on real
// dbgen data have the shape the Hive catalog model assumes.

#include <gtest/gtest.h>

#include "docstore/document.h"
#include "hive/catalog.h"
#include "hive/rcfile_format.h"
#include "tpch/dbgen.h"

namespace elephant::hive {
namespace {

using exec::AsDouble;
using exec::AsInt;
using exec::AsString;
using exec::Table;
using exec::Value;
using exec::ValueType;

Table SmallTable() {
  Table t({{"id", ValueType::kInt},
           {"price", ValueType::kDouble},
           {"flag", ValueType::kString}});
  for (int64_t i = 0; i < 100; ++i) {
    t.AddRow({Value{i * 3},
              Value{static_cast<double>(i) * 1.5},
              Value{std::string(i % 2 ? "A" : "R")}});
  }
  return t;
}

TEST(RcfileTest, RoundTripPreservesEverything) {
  Table t = SmallTable();
  std::string bytes = RcfileEncode(t, /*rows_per_group=*/32);
  auto decoded = RcfileDecode(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  const Table& d = decoded.value();
  ASSERT_EQ(d.num_rows(), t.num_rows());
  ASSERT_EQ(d.num_cols(), t.num_cols());
  EXPECT_EQ(d.columns()[2].name, "flag");
  for (size_t r = 0; r < t.num_rows(); ++r) {
    EXPECT_EQ(AsInt(d.rows()[r][0]), AsInt(t.rows()[r][0]));
    EXPECT_DOUBLE_EQ(AsDouble(d.rows()[r][1]), AsDouble(t.rows()[r][1]));
    EXPECT_EQ(AsString(d.rows()[r][2]), AsString(t.rows()[r][2]));
  }
}

TEST(RcfileTest, EmptyTableRoundTrips) {
  Table t({{"x", ValueType::kInt}});
  auto decoded = RcfileDecode(RcfileEncode(t));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().num_rows(), 0u);
}

TEST(RcfileTest, NegativeAndHugeInts) {
  Table t({{"x", ValueType::kInt}});
  for (int64_t v : {INT64_MIN + 1, int64_t{-1000000000}, int64_t{-1},
                    int64_t{0}, int64_t{1}, INT64_MAX - 1}) {
    t.AddRow({Value{v}});
  }
  auto decoded = RcfileDecode(RcfileEncode(t));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  for (size_t r = 0; r < t.num_rows(); ++r) {
    EXPECT_EQ(AsInt(decoded.value().rows()[r][0]), AsInt(t.rows()[r][0]));
  }
}

TEST(RcfileTest, CorruptInputsRejected) {
  Table t = SmallTable();
  std::string bytes = RcfileEncode(t);
  EXPECT_FALSE(RcfileDecode("").ok());
  EXPECT_FALSE(RcfileDecode(bytes.substr(0, 10)).ok());
  EXPECT_FALSE(RcfileDecode(bytes.substr(0, bytes.size() / 2)).ok());
}

TEST(RcfileTest, LowCardinalityColumnsCompressWell) {
  // A returnflag-like column: 3 distinct values over 10k rows.
  Table t({{"flag", ValueType::kString}});
  for (int i = 0; i < 10000; ++i) {
    t.AddRow({Value{std::string(i % 3 == 0 ? "R" : (i % 3 == 1 ? "A"
                                                               : "N"))}});
  }
  RcfileWriteStats stats;
  RcfileEncode(t, 4096, &stats);
  // 2 bytes of text per row vs ~1-2 bits encoded.
  EXPECT_GT(stats.TextCompressionRatio(), 4.0);
}

TEST(RcfileCalibrationTest, DbgenRatiosMatchTheCatalogShape) {
  tpch::TpchDatabase db = tpch::GenerateDatabase(0.005);
  RcfileWriteStats lineitem, customer, orders;
  RcfileEncode(db.lineitem, 4096, &lineitem);
  RcfileEncode(db.customer, 4096, &customer);
  RcfileEncode(db.orders, 4096, &orders);

  // The catalog model's central assumption: the numeric-heavy lineitem
  // compresses (much) better than the text-heavy customer.
  EXPECT_GT(lineitem.TextCompressionRatio(),
            customer.TextCompressionRatio());
  // And the measured magnitudes point the same way the model's GZIP
  // ratios do. (This format stops at dictionary/delta/bit-packing;
  // GZIP's entropy stage would push both higher without changing the
  // ordering the catalog depends on.)
  EXPECT_GT(lineitem.TextCompressionRatio(), 2.0);
  EXPECT_LT(lineitem.TextCompressionRatio(), 12.0);
  EXPECT_GT(customer.TextCompressionRatio(), 1.05);
  EXPECT_GT(lineitem.TextCompressionRatio(),
            1.5 * customer.TextCompressionRatio());
  // Row-group accounting.
  EXPECT_EQ(lineitem.rows, static_cast<int64_t>(db.lineitem.num_rows()));
  EXPECT_GT(lineitem.row_groups, 1);
}

}  // namespace
}  // namespace elephant::hive

namespace elephant::docstore {
namespace {

TEST(DocumentTest, SetGetRemove) {
  Document doc;
  doc.Set("name", std::string("ada"));
  doc.Set("age", int64_t{36});
  doc.Set("score", 9.5);
  EXPECT_EQ(doc.num_fields(), 3);
  EXPECT_TRUE(doc.Has("age"));
  EXPECT_EQ(std::get<int64_t>(doc.Get("age").value()), 36);
  doc.Set("age", int64_t{37});  // replace keeps order
  EXPECT_EQ(doc.num_fields(), 3);
  EXPECT_EQ(doc.fields()[1].first, "age");
  EXPECT_TRUE(doc.Remove("score").ok());
  EXPECT_TRUE(doc.Remove("score").IsNotFound());
  EXPECT_TRUE(doc.Get("score").status().IsNotFound());
}

TEST(DocumentTest, FlexibleSchemas) {
  // Two documents of the same "collection" with different structures —
  // the §2.4 flexibility SQL Server's rigid schema lacks.
  Document a;
  a.Set("user", std::string("x"));
  Document b;
  b.Set("user", std::string("y"));
  b.Set("geo", 1.5);
  b.Set("tags", std::string("a,b"));
  EXPECT_NE(a.num_fields(), b.num_fields());
}

TEST(DocumentTest, SerializeRoundTrip) {
  Document doc;
  doc.Set("s", std::string("hello world"));
  doc.Set("i", int64_t{-42});
  doc.Set("d", 2.718281828);
  std::string bytes = doc.Serialize();
  EXPECT_EQ(static_cast<int32_t>(bytes.size()), doc.SerializedBytes());
  auto parsed = Document::Parse(bytes);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(std::get<std::string>(parsed.value().Get("s").value()),
            "hello world");
  EXPECT_EQ(std::get<int64_t>(parsed.value().Get("i").value()), -42);
  EXPECT_DOUBLE_EQ(std::get<double>(parsed.value().Get("d").value()),
                   2.718281828);
}

TEST(DocumentTest, ParseRejectsGarbage) {
  EXPECT_FALSE(Document::Parse("").ok());
  EXPECT_FALSE(Document::Parse("abc").ok());
  Document doc;
  doc.Set("x", int64_t{1});
  std::string bytes = doc.Serialize();
  EXPECT_FALSE(Document::Parse(bytes.substr(0, bytes.size() - 2)).ok());
}

TEST(DocumentTest, YcsbRecordShape) {
  // The paper's records: 10 fields x 100 B + a 24-byte key ~ 1 KB.
  Document doc = Document::YcsbRecord(10, 100);
  EXPECT_EQ(doc.num_fields(), 10);
  EXPECT_GT(doc.SerializedBytes(), 1000);
  EXPECT_LT(doc.SerializedBytes(), 1200);
  EXPECT_TRUE(doc.Has("field0"));
  EXPECT_TRUE(doc.Has("field9"));
}

}  // namespace
}  // namespace elephant::docstore
