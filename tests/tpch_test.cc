#include <gtest/gtest.h>

#include <set>
#include <unordered_map>
#include <unordered_set>

#include "common/date.h"
#include "exec/operators.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"
#include "tpch/schema.h"

namespace elephant::tpch {
namespace {

using exec::AsDouble;
using exec::AsInt;
using exec::AsString;
using exec::Row;
using exec::Table;

// One shared mini database for the whole suite (SF 0.01: 15k orders,
// ~60k lineitems).
const TpchDatabase& Db() {
  static const TpchDatabase* db = new TpchDatabase(GenerateDatabase(0.01));
  return *db;
}

TEST(SchemaTest, RowCountsFollowSpec) {
  EXPECT_EQ(RowCountAtScale(TableId::kRegion, 1000), 5);
  EXPECT_EQ(RowCountAtScale(TableId::kNation, 1000), 25);
  EXPECT_EQ(RowCountAtScale(TableId::kSupplier, 1), 10000);
  EXPECT_EQ(RowCountAtScale(TableId::kPart, 1), 200000);
  EXPECT_EQ(RowCountAtScale(TableId::kPartsupp, 1), 800000);
  EXPECT_EQ(RowCountAtScale(TableId::kCustomer, 1), 150000);
  EXPECT_EQ(RowCountAtScale(TableId::kOrders, 1), 1500000);
  EXPECT_EQ(RowCountAtScale(TableId::kLineitem, 1), 6000000);
  // Scale factors from the paper.
  EXPECT_EQ(RowCountAtScale(TableId::kLineitem, 16000), 96000000000LL);
}

TEST(SchemaTest, SparseOrderkeys8Of32) {
  // dbgen uses only the first 8 orderkeys of each 32-key block.
  EXPECT_EQ(SparseOrderkey(0), 1);
  EXPECT_EQ(SparseOrderkey(7), 8);
  EXPECT_EQ(SparseOrderkey(8), 33);
  EXPECT_EQ(SparseOrderkey(15), 40);
  EXPECT_EQ(SparseOrderkey(16), 65);
}

TEST(SchemaTest, SchemasHaveTpchColumns) {
  auto l = TableSchema(TableId::kLineitem);
  EXPECT_EQ(l.size(), 16u);
  auto o = TableSchema(TableId::kOrders);
  EXPECT_EQ(o.size(), 9u);
  for (int t = 0; t < kNumTables; ++t) {
    EXPECT_GT(TableSchema(static_cast<TableId>(t)).size(), 2u);
    EXPECT_GT(AvgRowBytes(static_cast<TableId>(t)), 0);
  }
}

TEST(DbgenTest, CardinalitiesMatchSpec) {
  const TpchDatabase& db = Db();
  EXPECT_EQ(db.region.num_rows(), 5u);
  EXPECT_EQ(db.nation.num_rows(), 25u);
  EXPECT_EQ(db.supplier.num_rows(), 100u);
  EXPECT_EQ(db.part.num_rows(), 2000u);
  EXPECT_EQ(db.partsupp.num_rows(), 8000u);
  EXPECT_EQ(db.customer.num_rows(), 1500u);
  EXPECT_EQ(db.orders.num_rows(), 15000u);
  // Lineitem: 1..7 per order, expect ~4 per order.
  EXPECT_GT(db.lineitem.num_rows(), 15000u * 3);
  EXPECT_LT(db.lineitem.num_rows(), 15000u * 5);
}

TEST(DbgenTest, OrderkeysAreSparse) {
  const TpchDatabase& db = Db();
  int okey = db.orders.ColIndex("o_orderkey");
  for (size_t i = 0; i < 100; ++i) {
    int64_t k = AsInt(db.orders.rows()[i][okey]);
    EXPECT_LE((k - 1) % 32, 7) << "orderkey " << k << " outside dense run";
  }
}

TEST(DbgenTest, CustkeysSkipMultiplesOfThree) {
  const TpchDatabase& db = Db();
  int ck = db.orders.ColIndex("o_custkey");
  for (const Row& r : db.orders.rows()) {
    EXPECT_NE(AsInt(r[ck]) % 3, 0);
  }
}

TEST(DbgenTest, LineitemDatesAreConsistent) {
  const TpchDatabase& db = Db();
  int sd = db.lineitem.ColIndex("l_shipdate");
  int cd = db.lineitem.ColIndex("l_commitdate");
  int rd = db.lineitem.ColIndex("l_receiptdate");
  int rf = db.lineitem.ColIndex("l_returnflag");
  int ls = db.lineitem.ColIndex("l_linestatus");
  DateCode today = CurrentDate();
  for (const Row& r : db.lineitem.rows()) {
    int64_t ship = AsInt(r[sd]);
    int64_t receipt = AsInt(r[rd]);
    EXPECT_GT(receipt, ship);
    EXPECT_GE(AsInt(r[cd]), StartDate());
    // Return flag rule: N iff receipt after CURRENTDATE.
    if (receipt <= today) {
      EXPECT_NE(AsString(r[rf]), "N");
    } else {
      EXPECT_EQ(AsString(r[rf]), "N");
    }
    // Line status rule.
    EXPECT_EQ(AsString(r[ls]), ship > today ? "O" : "F");
  }
}

TEST(DbgenTest, LineitemKeysReferenceValidRows) {
  const TpchDatabase& db = Db();
  int pk = db.lineitem.ColIndex("l_partkey");
  int sk = db.lineitem.ColIndex("l_suppkey");
  int64_t parts = static_cast<int64_t>(db.part.num_rows());
  int64_t supps = static_cast<int64_t>(db.supplier.num_rows());
  for (const Row& r : db.lineitem.rows()) {
    int64_t p = AsInt(r[pk]);
    int64_t s = AsInt(r[sk]);
    EXPECT_GE(p, 1);
    EXPECT_LE(p, parts);
    EXPECT_GE(s, 1);
    EXPECT_LE(s, supps);
  }
}

TEST(DbgenTest, LineitemSuppkeyIsAPartsuppSupplier) {
  const TpchDatabase& db = Db();
  // Build the partsupp relation's (partkey -> suppliers) map.
  int pspk = db.partsupp.ColIndex("ps_partkey");
  int pssk = db.partsupp.ColIndex("ps_suppkey");
  std::unordered_map<int64_t, std::unordered_set<int64_t>> offers;
  for (const Row& r : db.partsupp.rows()) {
    offers[AsInt(r[pspk])].insert(AsInt(r[pssk]));
  }
  int lpk = db.lineitem.ColIndex("l_partkey");
  int lsk = db.lineitem.ColIndex("l_suppkey");
  for (const Row& r : db.lineitem.rows()) {
    ASSERT_TRUE(offers.at(AsInt(r[lpk])).count(AsInt(r[lsk])))
        << "lineitem references a (part, supplier) pair not in partsupp";
  }
}

TEST(DbgenTest, EachPartHasFourSuppliers) {
  const TpchDatabase& db = Db();
  int pspk = db.partsupp.ColIndex("ps_partkey");
  int pssk = db.partsupp.ColIndex("ps_suppkey");
  std::unordered_map<int64_t, std::unordered_set<int64_t>> offers;
  for (const Row& r : db.partsupp.rows()) {
    offers[AsInt(r[pspk])].insert(AsInt(r[pssk]));
  }
  EXPECT_EQ(offers.size(), db.part.num_rows());
  // Order-insensitive: one independent EXPECT per entry.
  // elephant-lint: allow(unordered-iteration)
  for (const auto& [p, s] : offers) {
    EXPECT_EQ(s.size(), 4u) << "part " << p;
  }
}

TEST(DbgenTest, TotalpriceMatchesLineitems) {
  const TpchDatabase& db = Db();
  int lok = db.lineitem.ColIndex("l_orderkey");
  int ep = db.lineitem.ColIndex("l_extendedprice");
  int di = db.lineitem.ColIndex("l_discount");
  int tx = db.lineitem.ColIndex("l_tax");
  std::unordered_map<int64_t, double> totals;
  for (const Row& r : db.lineitem.rows()) {
    totals[AsInt(r[lok])] +=
        AsDouble(r[ep]) * (1 + AsDouble(r[tx])) * (1 - AsDouble(r[di]));
  }
  int ook = db.orders.ColIndex("o_orderkey");
  int tp = db.orders.ColIndex("o_totalprice");
  for (const Row& r : db.orders.rows()) {
    EXPECT_NEAR(AsDouble(r[tp]), totals.at(AsInt(r[ook])), 0.01);
  }
}

TEST(DbgenTest, DeterministicForSeed) {
  TpchDatabase a = GenerateDatabase(0.001);
  TpchDatabase b = GenerateDatabase(0.001);
  ASSERT_EQ(a.lineitem.num_rows(), b.lineitem.num_rows());
  for (size_t i = 0; i < a.lineitem.num_rows(); i += 97) {
    EXPECT_EQ(AsInt(a.lineitem.rows()[i][1]), AsInt(b.lineitem.rows()[i][1]));
  }
}

// The paper §3.3.1: at SF 16000 dbgen's 32-bit RANDOM overflows and
// produces negative part/cust keys; the RANDOM64 fix repairs it. We
// reproduce with a forced key range above INT32_MAX.
TEST(DbgenTest, Random32ProducesNegativeKeysAtHugeScale) {
  DbgenOptions opt;
  opt.use_random64 = false;
  opt.forced_part_count = 3200000000LL;  // SF 16000's part count
  TpchDatabase db = GenerateDatabase(0.0005, opt);
  int pk = db.lineitem.ColIndex("l_partkey");
  bool saw_negative = false;
  for (const Row& r : db.lineitem.rows()) {
    if (AsInt(r[pk]) < 0) saw_negative = true;
  }
  EXPECT_TRUE(saw_negative);
}

TEST(DbgenTest, Random64FixesHugeScale) {
  DbgenOptions opt;
  opt.use_random64 = true;
  opt.forced_part_count = 3200000000LL;
  TpchDatabase db = GenerateDatabase(0.0005, opt);
  int pk = db.lineitem.ColIndex("l_partkey");
  for (const Row& r : db.lineitem.rows()) {
    EXPECT_GT(AsInt(r[pk]), 0);
  }
}

// ---- Query result checks -------------------------------------------------

TEST(QueryTest, AllQueriesRunAndProduceSchemas) {
  const TpchDatabase& db = Db();
  for (int q = 1; q <= kNumQueries; ++q) {
    Table result = RunQuery(q, db);
    EXPECT_GT(result.num_cols(), 0) << "Q" << q;
    SCOPED_TRACE(QueryName(q));
  }
}

TEST(QueryTest, Q1GroupsAndTotalsAreConsistent) {
  const TpchDatabase& db = Db();
  Table r = RunQuery(1, db);
  // At most 4 (returnflag, linestatus) combos exist: AF, NF, NO, RF.
  EXPECT_GE(r.num_rows(), 3u);
  EXPECT_LE(r.num_rows(), 4u);
  // Sum of per-group counts == rows passing the date filter (brute force).
  int cnt = r.ColIndex("count_order");
  int64_t total = 0;
  for (const Row& row : r.rows()) total += AsInt(row[cnt]);
  int sd = db.lineitem.ColIndex("l_shipdate");
  DateCode cutoff = MakeDate(1998, 12, 1) - 90;
  int64_t expected = 0;
  for (const Row& row : db.lineitem.rows()) {
    if (AsInt(row[sd]) <= cutoff) expected++;
  }
  EXPECT_EQ(total, expected);
  // avg_qty consistency: sum_qty / countize.
  int sq = r.ColIndex("sum_qty");
  int aq = r.ColIndex("avg_qty");
  for (const Row& row : r.rows()) {
    EXPECT_NEAR(AsDouble(row[aq]),
                AsDouble(row[sq]) / AsInt(row[cnt]), 1e-6);
  }
}

TEST(QueryTest, Q1SortedByFlagStatus) {
  Table r = RunQuery(1, Db());
  for (size_t i = 1; i < r.num_rows(); ++i) {
    std::string prev = AsString(r.rows()[i - 1][0]) +
                       AsString(r.rows()[i - 1][1]);
    std::string cur =
        AsString(r.rows()[i][0]) + AsString(r.rows()[i][1]);
    EXPECT_LT(prev, cur);
  }
}

TEST(QueryTest, Q2ReturnsMinCostSuppliers) {
  const TpchDatabase& db = Db();
  Table r = RunQuery(2, db);
  EXPECT_LE(r.num_rows(), 100u);
  // s_acctbal descending.
  for (size_t i = 1; i < r.num_rows(); ++i) {
    EXPECT_GE(AsDouble(r.rows()[i - 1][0]), AsDouble(r.rows()[i][0]));
  }
}

TEST(QueryTest, Q3TopTenByRevenue) {
  Table r = RunQuery(3, Db());
  EXPECT_LE(r.num_rows(), 10u);
  EXPECT_GT(r.num_rows(), 0u);
  int rev = r.ColIndex("revenue");
  for (size_t i = 1; i < r.num_rows(); ++i) {
    EXPECT_GE(AsDouble(r.rows()[i - 1][rev]), AsDouble(r.rows()[i][rev]));
  }
}

TEST(QueryTest, Q4CountsMatchBruteForce) {
  const TpchDatabase& db = Db();
  Table r = RunQuery(4, db);
  // Brute force: orders in window with at least one late lineitem.
  int od = db.orders.ColIndex("o_orderdate");
  int ok = db.orders.ColIndex("o_orderkey");
  int op = db.orders.ColIndex("o_orderpriority");
  int lok = db.lineitem.ColIndex("l_orderkey");
  int cd = db.lineitem.ColIndex("l_commitdate");
  int rd = db.lineitem.ColIndex("l_receiptdate");
  std::unordered_set<int64_t> late_orders;
  for (const Row& row : db.lineitem.rows()) {
    if (AsInt(row[cd]) < AsInt(row[rd])) late_orders.insert(AsInt(row[lok]));
  }
  DateCode lo = MakeDate(1993, 7, 1);
  DateCode hi = AddMonths(lo, 3);
  std::unordered_map<std::string, int64_t> expected;
  for (const Row& row : db.orders.rows()) {
    int64_t d = AsInt(row[od]);
    if (d >= lo && d < hi && late_orders.count(AsInt(row[ok]))) {
      expected[AsString(row[op])]++;
    }
  }
  ASSERT_EQ(r.num_rows(), expected.size());
  int cnt = r.ColIndex("order_count");
  for (const Row& row : r.rows()) {
    EXPECT_EQ(AsInt(row[cnt]), expected.at(AsString(row[0])));
  }
}

TEST(QueryTest, Q5RevenueDescendingAsiaNations) {
  Table r = RunQuery(5, Db());
  // Asia has 5 nations.
  EXPECT_LE(r.num_rows(), 5u);
  EXPECT_GT(r.num_rows(), 0u);
  int rev = r.ColIndex("revenue");
  for (size_t i = 1; i < r.num_rows(); ++i) {
    EXPECT_GE(AsDouble(r.rows()[i - 1][rev]), AsDouble(r.rows()[i][rev]));
  }
  static const std::set<std::string> kAsia = {"INDIA", "INDONESIA", "JAPAN",
                                              "CHINA", "VIETNAM"};
  for (const Row& row : r.rows()) {
    EXPECT_TRUE(kAsia.count(AsString(row[0])));
  }
}

TEST(QueryTest, Q6MatchesBruteForce) {
  const TpchDatabase& db = Db();
  Table r = RunQuery(6, db);
  ASSERT_EQ(r.num_rows(), 1u);
  int sd = db.lineitem.ColIndex("l_shipdate");
  int di = db.lineitem.ColIndex("l_discount");
  int qt = db.lineitem.ColIndex("l_quantity");
  int ep = db.lineitem.ColIndex("l_extendedprice");
  DateCode lo = MakeDate(1994, 1, 1);
  DateCode hi = AddYears(lo, 1);
  double expected = 0;
  for (const Row& row : db.lineitem.rows()) {
    int64_t d = AsInt(row[sd]);
    double disc = AsDouble(row[di]);
    if (d >= lo && d < hi && disc >= 0.05 - 1e-9 && disc <= 0.07 + 1e-9 &&
        AsDouble(row[qt]) < 24) {
      expected += AsDouble(row[ep]) * disc;
    }
  }
  EXPECT_NEAR(AsDouble(r.rows()[0][0]), expected, 1e-6);
  EXPECT_GT(expected, 0);
}

TEST(QueryTest, Q7FranceGermanyPairsOnly) {
  Table r = RunQuery(7, Db());
  EXPECT_GT(r.num_rows(), 0u);
  for (const Row& row : r.rows()) {
    std::string a = AsString(row[0]);
    std::string b = AsString(row[1]);
    EXPECT_TRUE((a == "FRANCE" && b == "GERMANY") ||
                (a == "GERMANY" && b == "FRANCE"));
    int64_t year = AsInt(row[2]);
    EXPECT_TRUE(year == 1995 || year == 1996);
  }
}

TEST(QueryTest, Q8MarketShareInUnitRange) {
  Table r = RunQuery(8, Db());
  int ms = r.ColIndex("mkt_share");
  for (const Row& row : r.rows()) {
    EXPECT_GE(AsDouble(row[ms]), 0.0);
    EXPECT_LE(AsDouble(row[ms]), 1.0);
  }
}

TEST(QueryTest, Q9NationsSortedYearsDescending) {
  Table r = RunQuery(9, Db());
  EXPECT_GT(r.num_rows(), 0u);
  for (size_t i = 1; i < r.num_rows(); ++i) {
    const Row& prev = r.rows()[i - 1];
    const Row& cur = r.rows()[i];
    if (AsString(prev[0]) == AsString(cur[0])) {
      EXPECT_GT(AsInt(prev[1]), AsInt(cur[1]));
    } else {
      EXPECT_LT(AsString(prev[0]), AsString(cur[0]));
    }
  }
}

TEST(QueryTest, Q10Top20Returners) {
  Table r = RunQuery(10, Db());
  EXPECT_LE(r.num_rows(), 20u);
  EXPECT_GT(r.num_rows(), 0u);
}

TEST(QueryTest, Q11ValuesAboveThresholdDescending) {
  Table r = RunQuery(11, Db());
  EXPECT_GT(r.num_rows(), 0u);
  int v = r.ColIndex("value");
  for (size_t i = 1; i < r.num_rows(); ++i) {
    EXPECT_GE(AsDouble(r.rows()[i - 1][v]), AsDouble(r.rows()[i][v]));
  }
}

TEST(QueryTest, Q12MailAndShipOnly) {
  Table r = RunQuery(12, Db());
  ASSERT_EQ(r.num_rows(), 2u);
  EXPECT_EQ(AsString(r.rows()[0][0]), "MAIL");
  EXPECT_EQ(AsString(r.rows()[1][0]), "SHIP");
}

TEST(QueryTest, Q13CustomerCountsCoverAllCustomers) {
  const TpchDatabase& db = Db();
  Table r = RunQuery(13, db);
  int cd = r.ColIndex("custdist");
  int64_t total = 0;
  for (const Row& row : r.rows()) total += AsInt(row[cd]);
  EXPECT_EQ(total, static_cast<int64_t>(db.customer.num_rows()));
  // There must be a bucket for customers with zero orders (custkey%3==0).
  int cc = r.ColIndex("c_count");
  bool has_zero_bucket = false;
  for (const Row& row : r.rows()) {
    if (AsInt(row[cc]) == 0) {
      has_zero_bucket = true;
      EXPECT_GE(AsInt(row[cd]), static_cast<int64_t>(db.customer.num_rows()) / 4);
    }
  }
  EXPECT_TRUE(has_zero_bucket);
}

TEST(QueryTest, Q14PromoFractionInRange) {
  Table r = RunQuery(14, Db());
  ASSERT_EQ(r.num_rows(), 1u);
  double pct = AsDouble(r.rows()[0][0]);
  EXPECT_GT(pct, 0.0);
  EXPECT_LT(pct, 100.0);
  // PROMO is 1 of 6 type prefixes: expect roughly 16%.
  EXPECT_NEAR(pct, 100.0 / 6, 8.0);
}

TEST(QueryTest, Q15TopSupplierHasMaxRevenue) {
  const TpchDatabase& db = Db();
  Table r = RunQuery(15, db);
  ASSERT_GE(r.num_rows(), 1u);
  // Recompute the max revenue brute-force.
  int sd = db.lineitem.ColIndex("l_shipdate");
  int sk = db.lineitem.ColIndex("l_suppkey");
  int ep = db.lineitem.ColIndex("l_extendedprice");
  int di = db.lineitem.ColIndex("l_discount");
  DateCode lo = MakeDate(1996, 1, 1);
  DateCode hi = AddMonths(lo, 3);
  std::unordered_map<int64_t, double> rev;
  for (const Row& row : db.lineitem.rows()) {
    int64_t d = AsInt(row[sd]);
    if (d >= lo && d < hi) {
      rev[AsInt(row[sk])] +=
          AsDouble(row[ep]) * (1 - AsDouble(row[di]));
    }
  }
  double max_rev = 0;
  // Max is commutative — iteration order cannot change the result.
  // elephant-lint: allow(unordered-iteration)
  for (auto& [s, v] : rev) max_rev = std::max(max_rev, v);
  EXPECT_NEAR(AsDouble(r.rows()[0][r.ColIndex("total_revenue")]), max_rev,
              1e-6);
}

TEST(QueryTest, Q16ExcludesBrand45) {
  const TpchDatabase& db = Db();
  Table r = RunQuery(16, db);
  EXPECT_GT(r.num_rows(), 0u);
  for (const Row& row : r.rows()) {
    EXPECT_NE(AsString(row[0]), "Brand#45");
    // A (brand, type, size) group can span many parts, but never more
    // suppliers than exist.
    EXPECT_GT(AsInt(row[r.ColIndex("supplier_cnt")]), 0);
    EXPECT_LE(AsInt(row[r.ColIndex("supplier_cnt")]),
              static_cast<int64_t>(db.supplier.num_rows()));
  }
}

TEST(QueryTest, Q17SingleValue) {
  Table r = RunQuery(17, Db());
  ASSERT_EQ(r.num_rows(), 1u);
  EXPECT_GE(AsDouble(r.rows()[0][0]), 0.0);
}

TEST(QueryTest, Q18AllRowsExceed300Quantity) {
  Table r = RunQuery(18, Db());
  int sq = r.ColIndex("sum_qty");
  for (const Row& row : r.rows()) {
    EXPECT_GT(AsDouble(row[sq]), 300.0);
  }
  EXPECT_LE(r.num_rows(), 100u);
}

TEST(QueryTest, Q19MatchesBruteForce) {
  const TpchDatabase& db = Db();
  Table r = RunQuery(19, db);
  ASSERT_EQ(r.num_rows(), 1u);
  EXPECT_GE(AsDouble(r.rows()[0][0]), 0.0);
}

TEST(QueryTest, Q20SuppliersSorted) {
  Table r = RunQuery(20, Db());
  for (size_t i = 1; i < r.num_rows(); ++i) {
    EXPECT_LE(AsString(r.rows()[i - 1][0]), AsString(r.rows()[i][0]));
  }
}

TEST(QueryTest, Q21WaitCountsDescending) {
  Table r = RunQuery(21, Db());
  int nw = r.ColIndex("numwait");
  for (size_t i = 1; i < r.num_rows(); ++i) {
    EXPECT_GE(AsInt(r.rows()[i - 1][nw]), AsInt(r.rows()[i][nw]));
  }
}

TEST(QueryTest, Q22OnlySelectedCountryCodes) {
  Table r = RunQuery(22, Db());
  EXPECT_GT(r.num_rows(), 0u);
  static const std::set<std::string> kCodes = {"13", "31", "23", "29",
                                               "30", "18", "17"};
  int nc = r.ColIndex("numcust");
  int tb = r.ColIndex("totacctbal");
  for (const Row& row : r.rows()) {
    EXPECT_TRUE(kCodes.count(AsString(row[0])));
    EXPECT_GT(AsInt(row[nc]), 0);
    // All selected customers have above-average (positive) balances.
    EXPECT_GT(AsDouble(row[tb]), 0.0);
  }
}

TEST(QueryTest, InputTablesDeclared) {
  for (int q = 1; q <= kNumQueries; ++q) {
    EXPECT_FALSE(QueryInputTables(q).empty()) << "Q" << q;
  }
  // Q9 touches 6 tables (the paper: it ran out of disk at 16 TB in Hive).
  EXPECT_EQ(QueryInputTables(9).size(), 6u);
}

}  // namespace
}  // namespace elephant::tpch
