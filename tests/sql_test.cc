#include <gtest/gtest.h>

#include "common/date.h"
#include "exec/operators.h"
#include "sql/engine.h"
#include "sql/parser.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

namespace elephant::sql {
namespace {

using exec::AsDouble;
using exec::AsInt;
using exec::AsString;
using exec::Table;
using exec::Value;
using exec::ValueType;

Table People() {
  Table t({{"id", ValueType::kInt},
           {"name", ValueType::kString},
           {"dept", ValueType::kString},
           {"salary", ValueType::kDouble}});
  t.AddRow({Value{int64_t{1}}, Value{std::string("ann")},
            Value{std::string("eng")}, Value{100.0}});
  t.AddRow({Value{int64_t{2}}, Value{std::string("bob")},
            Value{std::string("eng")}, Value{200.0}});
  t.AddRow({Value{int64_t{3}}, Value{std::string("cat")},
            Value{std::string("sales")}, Value{150.0}});
  return t;
}

Table Depts() {
  Table t({{"dname", ValueType::kString}, {"floor", ValueType::kInt}});
  t.AddRow({Value{std::string("eng")}, Value{int64_t{3}}});
  t.AddRow({Value{std::string("sales")}, Value{int64_t{1}}});
  return t;
}

class SqlTest : public ::testing::Test {
 protected:
  SqlTest() : people_(People()), depts_(Depts()) {
    EXPECT_TRUE(db_.Register("people", &people_).ok());
    EXPECT_TRUE(db_.Register("depts", &depts_).ok());
  }
  Table people_, depts_;
  Database db_;
};

TEST_F(SqlTest, SelectStar_ColumnsAndFilter) {
  auto r = db_.Query("SELECT name, salary FROM people WHERE salary > 120");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r.value().num_rows(), 2u);
  EXPECT_EQ(r.value().columns()[0].name, "name");
}

TEST_F(SqlTest, ArithmeticAndAlias) {
  auto r = db_.Query(
      "SELECT name, salary * 2 + 1 AS double_pay FROM people "
      "WHERE id = 1");
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r.value().num_rows(), 1u);
  EXPECT_EQ(r.value().ColIndex("double_pay"), 1);
  EXPECT_DOUBLE_EQ(AsDouble(r.value().rows()[0][1]), 201.0);
}

TEST_F(SqlTest, AndOrNotPrecedence) {
  auto r = db_.Query(
      "SELECT id FROM people WHERE dept = 'eng' AND salary > 150 "
      "OR name = 'cat'");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r.value().num_rows(), 2u);  // bob, cat
  auto r2 = db_.Query("SELECT id FROM people WHERE NOT dept = 'eng'");
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2.value().num_rows(), 1u);
}

TEST_F(SqlTest, BetweenAndLike) {
  auto r = db_.Query(
      "SELECT id FROM people WHERE salary BETWEEN 100 AND 150");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r.value().num_rows(), 2u);
  auto r2 = db_.Query("SELECT id FROM people WHERE name LIKE '%a%'");
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2.value().num_rows(), 2u);  // ann, cat
  auto r3 = db_.Query("SELECT id FROM people WHERE name NOT LIKE 'a%'");
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ(r3.value().num_rows(), 2u);  // bob, cat
}

TEST_F(SqlTest, JoinOn) {
  auto r = db_.Query(
      "SELECT name, floor FROM people JOIN depts ON dept = dname "
      "ORDER BY name");
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r.value().num_rows(), 3u);
  EXPECT_EQ(AsString(r.value().rows()[0][0]), "ann");
  EXPECT_EQ(AsInt(r.value().rows()[0][1]), 3);
}

TEST_F(SqlTest, GroupByWithAggregates) {
  auto r = db_.Query(
      "SELECT dept, SUM(salary) AS total, AVG(salary) AS mean, "
      "COUNT(*) AS n, MIN(salary) AS lo, MAX(salary) AS hi "
      "FROM people GROUP BY dept ORDER BY dept");
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r.value().num_rows(), 2u);
  const auto& eng = r.value().rows()[0];
  EXPECT_EQ(AsString(eng[0]), "eng");
  EXPECT_DOUBLE_EQ(AsDouble(eng[1]), 300.0);
  EXPECT_DOUBLE_EQ(AsDouble(eng[2]), 150.0);
  EXPECT_EQ(AsInt(eng[3]), 2);
  EXPECT_DOUBLE_EQ(AsDouble(eng[4]), 100.0);
  EXPECT_DOUBLE_EQ(AsDouble(eng[5]), 200.0);
}

TEST_F(SqlTest, GlobalAggregateAndCountDistinct) {
  auto r = db_.Query(
      "SELECT COUNT(*) AS n, COUNT(DISTINCT dept) AS depts FROM people");
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r.value().num_rows(), 1u);
  EXPECT_EQ(AsInt(r.value().rows()[0][0]), 3);
  EXPECT_EQ(AsInt(r.value().rows()[0][1]), 2);
}

TEST_F(SqlTest, OrderByDescAndLimit) {
  auto r = db_.Query(
      "SELECT name, salary FROM people ORDER BY salary DESC LIMIT 2");
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r.value().num_rows(), 2u);
  EXPECT_EQ(AsString(r.value().rows()[0][0]), "bob");
  EXPECT_EQ(AsString(r.value().rows()[1][0]), "cat");
}

TEST_F(SqlTest, SelectStar) {
  auto r = db_.Query("SELECT * FROM people WHERE id <= 2 ORDER BY id");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r.value().num_cols(), 4);
  EXPECT_EQ(r.value().num_rows(), 2u);
  EXPECT_EQ(r.value().columns()[3].name, "salary");
}

TEST_F(SqlTest, HavingFiltersGroups) {
  auto r = db_.Query(
      "SELECT dept, SUM(salary) AS total FROM people GROUP BY dept "
      "HAVING total > 200 ORDER BY dept");
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r.value().num_rows(), 1u);  // only eng (300)
  EXPECT_EQ(AsString(r.value().rows()[0][0]), "eng");
  // HAVING without GROUP BY is rejected.
  EXPECT_FALSE(
      db_.Query("SELECT id FROM people HAVING id > 1").ok());
}

TEST_F(SqlTest, ErrorsAreStatusesNotCrashes) {
  EXPECT_FALSE(db_.Query("SELECT nope FROM people").ok());
  EXPECT_FALSE(db_.Query("SELECT id FROM missing_table").ok());
  EXPECT_FALSE(db_.Query("SELEKT id FROM people").ok());
  EXPECT_FALSE(db_.Query("SELECT id FROM people WHERE").ok());
  EXPECT_FALSE(db_.Query("SELECT id FROM people LIMIT banana").ok());
  EXPECT_FALSE(
      db_.Query("SELECT id, SUM(salary) FROM people GROUP BY dept").ok());
}

TEST(LikeMatchTest, Wildcards) {
  EXPECT_TRUE(LikeMatch("hello", "hello"));
  EXPECT_TRUE(LikeMatch("hello", "h%"));
  EXPECT_TRUE(LikeMatch("hello", "%o"));
  EXPECT_TRUE(LikeMatch("hello", "%ell%"));
  EXPECT_TRUE(LikeMatch("hello", "h_llo"));
  EXPECT_FALSE(LikeMatch("hello", "h_llq"));
  EXPECT_FALSE(LikeMatch("hello", "x%"));
  EXPECT_TRUE(LikeMatch("", "%"));
  EXPECT_FALSE(LikeMatch("", "a"));
  EXPECT_TRUE(LikeMatch("ECONOMY ANODIZED STEEL", "%BRASS") == false);
}

TEST(ParserTest, DateLiteral) {
  auto stmt = Parse(
      "SELECT l_quantity FROM lineitem WHERE l_shipdate <= "
      "DATE '1998-09-02'");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  // The right-hand side folded to the integer day code.
  const Expr& where = *stmt.value().where;
  ASSERT_EQ(where.kind, ExprKind::kBinary);
  EXPECT_EQ(where.children[1]->int_value, MakeDate(1998, 9, 2));
}

// ---- The flagship equivalence tests: SQL text vs the hand-built
// reference plans of tpch::RunQuery on real dbgen data. ----------------

class TpchSqlTest : public ::testing::Test {
 protected:
  static const tpch::TpchDatabase& Db() {
    static const tpch::TpchDatabase* db =
        new tpch::TpchDatabase(tpch::GenerateDatabase(0.01));
    return *db;
  }
};

TEST_F(TpchSqlTest, Q1PricingSummaryMatchesReference) {
  Database sql_db;
  sql_db.RegisterTpch(Db());
  auto result = sql_db.Query(
      "SELECT l_returnflag, l_linestatus, "
      "SUM(l_quantity) AS sum_qty, "
      "SUM(l_extendedprice) AS sum_base_price, "
      "AVG(l_discount) AS avg_disc, "
      "COUNT(*) AS count_order "
      "FROM lineitem "
      "WHERE l_shipdate <= DATE '1998-09-02' "
      "GROUP BY l_returnflag, l_linestatus "
      "ORDER BY l_returnflag, l_linestatus");
  ASSERT_TRUE(result.ok()) << result.status();

  Table reference = tpch::RunQuery(1, Db());
  ASSERT_EQ(result.value().num_rows(), reference.num_rows());
  int ref_qty = reference.ColIndex("sum_qty");
  int ref_price = reference.ColIndex("sum_base_price");
  int ref_cnt = reference.ColIndex("count_order");
  for (size_t i = 0; i < reference.num_rows(); ++i) {
    const auto& got = result.value().rows()[i];
    const auto& want = reference.rows()[i];
    EXPECT_EQ(AsString(got[0]), AsString(want[0]));
    EXPECT_EQ(AsString(got[1]), AsString(want[1]));
    EXPECT_NEAR(AsDouble(got[2]), AsDouble(want[ref_qty]), 1e-4);
    EXPECT_NEAR(AsDouble(got[3]), AsDouble(want[ref_price]), 1.0);
    EXPECT_EQ(AsInt(got[5]), AsInt(want[ref_cnt]));
  }
}

TEST_F(TpchSqlTest, Q6ForecastRevenueMatchesReference) {
  Database sql_db;
  sql_db.RegisterTpch(Db());
  auto result = sql_db.Query(
      "SELECT SUM(l_extendedprice * l_discount) AS revenue "
      "FROM lineitem "
      "WHERE l_shipdate >= DATE '1994-01-01' "
      "AND l_shipdate < DATE '1995-01-01' "
      "AND l_discount BETWEEN 0.05 AND 0.07 "
      "AND l_quantity < 24");
  ASSERT_TRUE(result.ok()) << result.status();
  Table reference = tpch::RunQuery(6, Db());
  ASSERT_EQ(result.value().num_rows(), 1u);
  EXPECT_NEAR(AsDouble(result.value().rows()[0][0]),
              AsDouble(reference.rows()[0][0]), 1.0);
}

TEST_F(TpchSqlTest, JoinCountMatchesOperatorApi) {
  Database sql_db;
  sql_db.RegisterTpch(Db());
  auto result = sql_db.Query(
      "SELECT COUNT(*) AS n FROM orders "
      "JOIN customer ON o_custkey = c_custkey "
      "WHERE c_mktsegment = 'BUILDING'");
  ASSERT_TRUE(result.ok()) << result.status();
  // Cross-check with the raw operator API.
  Table joined = exec::HashJoinOn(Db().orders, Db().customer, {"o_custkey"},
                                  {"c_custkey"});
  int seg = joined.ColIndex("c_mktsegment");
  int64_t expected = 0;
  for (const auto& row : joined.rows()) {
    if (AsString(row[seg]) == "BUILDING") expected++;
  }
  EXPECT_EQ(AsInt(result.value().rows()[0][0]), expected);
  EXPECT_GT(expected, 0);
}

}  // namespace
}  // namespace elephant::sql
