#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "common/rng.h"
#include "exec/compress.h"
#include "exec/fused.h"
#include "exec/operators.h"
#include "exec/table.h"
#include "exec/zonemap.h"
#include "tpch/dbgen.h"

namespace elephant::exec {
namespace {

// ---- Chunk shapes shared across the codec property tests -----------------

std::vector<int64_t> IntShape(const std::string& shape, size_t n) {
  Rng rng(0xC0DEC5);
  std::vector<int64_t> v;
  v.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (shape == "constant") {
      v.push_back(42);
    } else if (shape == "single_run_tail") {
      v.push_back(i < n / 2 ? 7 : 8);
    } else if (shape == "alternating") {
      v.push_back(i % 2 == 0 ? -3 : 1000);
    } else if (shape == "ascending") {
      v.push_back(static_cast<int64_t>(i) + 1000000);
    } else if (shape == "negatives") {
      v.push_back(-static_cast<int64_t>(rng.Uniform(1 << 20)) - 1);
    } else if (shape == "extremes") {
      v.push_back(i % 3 == 0 ? std::numeric_limits<int64_t>::min()
                             : (i % 3 == 1 ? std::numeric_limits<int64_t>::max()
                                           : 0));
    } else {  // random
      v.push_back(static_cast<int64_t>(rng.Next()));
    }
  }
  return v;
}

std::vector<double> DoubleShape(const std::string& shape, size_t n) {
  Rng rng(0xD0B1E5);
  std::vector<double> v;
  v.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (shape == "constant") {
      v.push_back(2.5);
    } else if (shape == "nan_poisoned") {
      v.push_back(i == n / 2 ? std::numeric_limits<double>::quiet_NaN()
                             : static_cast<double>(i));
    } else if (shape == "signed_zero") {
      v.push_back(i % 2 == 0 ? 0.0 : -0.0);
    } else if (shape == "runs") {
      v.push_back(static_cast<double>(i / 16));
    } else {  // random
      v.push_back(rng.NextDouble() * 1e6 - 5e5);
    }
  }
  return v;
}

std::vector<uint32_t> CodeShape(const std::string& shape, size_t n) {
  Rng rng(0x5EED);
  std::vector<uint32_t> v;
  v.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (shape == "constant") {
      v.push_back(3);
    } else if (shape == "alternating") {
      v.push_back(i % 2 == 0 ? 0 : StringPool::kNoCode - 1);
    } else if (shape == "small_domain") {
      v.push_back(static_cast<uint32_t>(rng.Uniform(7)));
    } else {  // random
      v.push_back(static_cast<uint32_t>(rng.Next()));
    }
  }
  return v;
}

bool IntCodecApplies(Codec c, const std::vector<int64_t>& v) {
  if (c != Codec::kBitPack) return true;
  for (int64_t x : v) {
    if (x < 0) return false;
  }
  return true;
}

// ---- Round-trip property tests: codec x type x shape ---------------------

TEST(CompressTest, Int64RoundTripEveryCodecAndShape) {
  const std::vector<std::string> shapes = {
      "constant", "single_run_tail", "alternating", "ascending",
      "negatives", "extremes",        "random"};
  const std::vector<size_t> sizes = {0, 1, 2, 100, 4096};
  for (const std::string& shape : shapes) {
    for (size_t n : sizes) {
      std::vector<int64_t> v = IntShape(shape, n);
      for (Codec c : {Codec::kPlain, Codec::kRle, Codec::kBitPack,
                      Codec::kFor}) {
        if (!IntCodecApplies(c, v)) continue;
        EncodedChunk e = EncodeInt64Chunk(v.data(), n, c);
        EXPECT_EQ(e.rows, n);
        std::vector<int64_t> out(n);
        DecodeInt64Chunk(e, out.data());
        EXPECT_EQ(out, v) << shape << " n=" << n << " codec="
                          << CodecName(c);
      }
      EncodedChunk a = EncodeInt64ChunkAuto(v.data(), n);
      std::vector<int64_t> out(n);
      DecodeInt64Chunk(a, out.data());
      EXPECT_EQ(out, v) << shape << " n=" << n << " auto";
    }
  }
}

TEST(CompressTest, DoubleRoundTripBitExact) {
  const std::vector<std::string> shapes = {"constant", "nan_poisoned",
                                           "signed_zero", "runs", "random"};
  for (const std::string& shape : shapes) {
    for (size_t n : {size_t{0}, size_t{1}, size_t{777}, size_t{4096}}) {
      std::vector<double> v = DoubleShape(shape, n);
      for (Codec c : {Codec::kPlain, Codec::kRle}) {
        EncodedChunk e = EncodeDoubleChunk(v.data(), n, c);
        std::vector<double> out(n);
        DecodeDoubleChunk(e, out.data());
        for (size_t i = 0; i < n; ++i) {
          // Bit-pattern equality: NaN payloads and -0.0 must survive.
          uint64_t a, b;
          std::memcpy(&a, &v[i], 8);
          std::memcpy(&b, &out[i], 8);
          EXPECT_EQ(a, b) << shape << " n=" << n << " i=" << i
                          << " codec=" << CodecName(c);
        }
      }
    }
  }
}

TEST(CompressTest, CodeRoundTripEveryCodecAndShape) {
  const std::vector<std::string> shapes = {"constant", "alternating",
                                           "small_domain", "random"};
  for (const std::string& shape : shapes) {
    for (size_t n : {size_t{0}, size_t{1}, size_t{33}, size_t{4096}}) {
      std::vector<uint32_t> v = CodeShape(shape, n);
      for (Codec c : {Codec::kPlain, Codec::kRle, Codec::kBitPack,
                      Codec::kFor}) {
        EncodedChunk e = EncodeCodeChunk(v.data(), n, c);
        std::vector<uint32_t> out(n);
        DecodeCodeChunk(e, out.data());
        EXPECT_EQ(out, v) << shape << " n=" << n << " codec="
                          << CodecName(c);
      }
      EncodedChunk a = EncodeCodeChunkAuto(v.data(), n);
      std::vector<uint32_t> out(n);
      DecodeCodeChunk(a, out.data());
      EXPECT_EQ(out, v) << shape << " n=" << n << " auto";
    }
  }
}

TEST(CompressTest, AutoChooserPicksCompactCodecs) {
  // Constant run: RLE wins by a mile.
  std::vector<int64_t> runs(4096, 42);
  EXPECT_EQ(EncodeInt64ChunkAuto(runs.data(), runs.size()).codec, Codec::kRle);
  // Small dense domain with distinct neighbors: packing beats RLE.
  std::vector<int64_t> dense(4096);
  for (size_t i = 0; i < dense.size(); ++i) {
    dense[i] = static_cast<int64_t>(i % 13);
  }
  EncodedChunk d = EncodeInt64ChunkAuto(dense.data(), dense.size());
  EXPECT_TRUE(d.codec == Codec::kBitPack || d.codec == Codec::kFor);
  EXPECT_LT(d.EncodedBytes(), dense.size() * 8 / 4);
  // Large offset, small spread: FOR packs far tighter than bit-packing
  // from zero (which is not even applicable pre-shift for negatives).
  std::vector<int64_t> offset(4096);
  for (size_t i = 0; i < offset.size(); ++i) {
    offset[i] = -5000000000LL + static_cast<int64_t>(i % 17);
  }
  EXPECT_EQ(EncodeInt64ChunkAuto(offset.data(), offset.size()).codec,
            Codec::kFor);
  // Full-range random data: nothing beats plain.
  std::vector<int64_t> rnd = IntShape("random", 4096);
  EXPECT_EQ(EncodeInt64ChunkAuto(rnd.data(), rnd.size()).codec, Codec::kPlain);
}

TEST(CompressTest, EncodedBoundsMatchZoneSemantics) {
  // Numeric bounds come back as the widened-double image; a NaN
  // anywhere poisons the chunk exactly like the zone-map builder.
  std::vector<int64_t> ints = {5, -2, 100, 3};
  for (Codec c : {Codec::kPlain, Codec::kRle, Codec::kFor}) {
    EncodedBounds b =
        EncodedChunkBounds(EncodeInt64Chunk(ints.data(), ints.size(), c));
    EXPECT_FALSE(b.is_code);
    EXPECT_DOUBLE_EQ(b.min, -2.0);
    EXPECT_DOUBLE_EQ(b.max, 100.0);
  }
  std::vector<double> poisoned =
      DoubleShape("nan_poisoned", 64);
  for (Codec c : {Codec::kPlain, Codec::kRle}) {
    EncodedBounds b = EncodedChunkBounds(
        EncodeDoubleChunk(poisoned.data(), poisoned.size(), c));
    EXPECT_TRUE(std::isnan(b.min));
    EXPECT_TRUE(std::isnan(b.max));
  }
  std::vector<uint32_t> codes = {9, 2, 7};
  for (Codec c : {Codec::kPlain, Codec::kRle, Codec::kBitPack, Codec::kFor}) {
    EncodedBounds b =
        EncodedChunkBounds(EncodeCodeChunk(codes.data(), codes.size(), c));
    EXPECT_TRUE(b.is_code);
    EXPECT_EQ(b.code_min, 2u);
    EXPECT_EQ(b.code_max, 9u);
  }
}

TEST(CompressTest, SerializeParseRoundTripAndCorruption) {
  std::vector<int64_t> v = IntShape("ascending", 1000);
  EncodedChunk e = EncodeInt64ChunkAuto(v.data(), v.size());
  std::vector<uint8_t> bytes = SerializeChunk(e);
  Result<EncodedChunk> parsed = ParseChunk(bytes.data(), bytes.size());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  std::vector<int64_t> out(v.size());
  DecodeInt64Chunk(parsed.value(), out.data());
  EXPECT_EQ(out, v);

  // Truncation and garbage surface as Status, never partial chunks.
  EXPECT_FALSE(ParseChunk(bytes.data(), 3).ok());
  EXPECT_FALSE(ParseChunk(bytes.data(), bytes.size() - 1).ok());
  std::vector<uint8_t> garbage = bytes;
  garbage[0] = 0xEE;  // unknown codec tag
  EXPECT_FALSE(ParseChunk(garbage.data(), garbage.size()).ok());
}

// ---- Whole-table compression against dbgen data --------------------------

TEST(CompressTest, TpchTableRoundTripBitExact) {
  tpch::TpchDatabase db = tpch::GenerateDatabase(0.01);
  for (const Table* t : {&db.lineitem, &db.orders, &db.part}) {
    CompressedTable ct = CompressTable(*t);
    EXPECT_EQ(ct.rows, t->num_rows());
    Table back = DecompressTable(ct);
    EXPECT_EQ(TableFingerprint(back), TableFingerprint(*t));
    // Zone-map-driven codec choice should actually compress dbgen data.
    EXPECT_LT(ct.EncodedBytes(), ct.PlainBytes());
  }
}

TEST(CompressTest, CompressedZoneMapsMatchPlainOnes) {
  tpch::TpchDatabase db = tpch::GenerateDatabase(0.01);
  const Table& l = db.lineitem;
  CompressedTable ct = CompressTable(l);
  std::shared_ptr<const ZoneMaps> zc = BuildZoneMapsCompressed(ct);
  ASSERT_NE(zc, nullptr);
  std::shared_ptr<const ZoneMaps> zm = GetZoneMaps(l);
  ASSERT_NE(zm, nullptr);
  ASSERT_EQ(zc->num_chunks, zm->num_chunks);
  ASSERT_EQ(zc->cols.size(), zm->cols.size());
  for (size_t c = 0; c < zm->cols.size(); ++c) {
    const ColumnZones& a = zc->cols[c];
    const ColumnZones& b = zm->cols[c];
    EXPECT_EQ(a.sorted_asc, b.sorted_asc) << "col " << c;
    ASSERT_EQ(a.min.size(), b.min.size());
    for (size_t k = 0; k < b.min.size(); ++k) {
      // Bit-compare so NaN-poisoned chunks count as equal too.
      uint64_t amin, bmin, amax, bmax;
      std::memcpy(&amin, &a.min[k], 8);
      std::memcpy(&bmin, &b.min[k], 8);
      std::memcpy(&amax, &a.max[k], 8);
      std::memcpy(&bmax, &b.max[k], 8);
      EXPECT_EQ(amin, bmin) << "col " << c << " chunk " << k;
      EXPECT_EQ(amax, bmax) << "col " << c << " chunk " << k;
    }
    EXPECT_EQ(a.code_min, b.code_min) << "col " << c;
    EXPECT_EQ(a.code_max, b.code_max) << "col " << c;
  }
  // The compressed-built maps validate against the decompressed table:
  // bounds, NaN poisoning, and sorted flags all hold.
  Table back = DecompressTable(ct);
  Status st = ValidateZoneMaps(back, *zc);
  EXPECT_TRUE(st.ok()) << st.ToString();
}

TEST(CompressTest, FusedSelectPrunesOnRoundTrippedTable) {
  tpch::TpchDatabase db = tpch::GenerateDatabase(0.02);
  Table back = DecompressTable(CompressTable(db.lineitem));
  ScanSpec spec;
  spec.ranges.push_back(ColLess(back, "l_orderkey", 100.0, true));
  ResetFusedCounters();
  std::vector<uint32_t> fused = FusedSelect(back, spec);
  FusedCounters fc = FusedCountersSnapshot();
  std::vector<uint32_t> oracle =
      EvalSelection(back.num_rows(), SpecPredicate(back, spec));
  EXPECT_EQ(fused, oracle);
  // l_orderkey is clustered ascending, so the selective scan must have
  // skipped work (pruned chunks or a sorted-column binary search).
  EXPECT_TRUE(fc.chunks_pruned > 0 || fc.sorted_bounded > 0)
      << "pruned=" << fc.chunks_pruned << " bounded=" << fc.sorted_bounded;
}

TEST(CompressTest, WithEncodedSegmentSumsMatchPlainScan) {
  tpch::TpchDatabase db = tpch::GenerateDatabase(0.01);
  const Table& l = db.lineitem;
  int qty = l.ColIndex("l_quantity");
  EncodedColumn ec = EncodeColumn(l, qty);
  const std::vector<double>& plain = l.DoubleData(qty);
  double expect = 0;
  for (double d : plain) expect += d;
  double got = 0;
  ChunkScratch scratch;
  for (size_t c = 0; c < ec.chunks.size(); ++c) {
    got += WithEncodedSegment(ec, c, &scratch, [](auto seg, size_t rows) {
      double s = 0;
      for (size_t i = 0; i < rows; ++i) s += static_cast<double>(seg(i));
      return s;
    });
  }
  EXPECT_DOUBLE_EQ(got, expect);
}

}  // namespace
}  // namespace elephant::exec
