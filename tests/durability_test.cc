// The durability contrast of §3.4.1: "While SQL Server supports ACID
// transaction semantics ... the MongoDB experiments were run without
// durability support." Made executable: after a crash, SQL Server loses
// no acknowledged write (commits are acknowledged only once their log
// batch is on the log disk), while MongoDB loses everything since the
// last mmap flush.

#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "docstore/mongod.h"
#include "sim/simulation.h"
#include "sqlkv/engine.h"
#include "sqlkv/wal.h"

namespace elephant {
namespace {

TEST(DurabilityTest, SqlAcknowledgedWritesSurviveCrash) {
  sim::Simulation sim;
  cluster::Node node(&sim, 0, cluster::NodeConfig{});
  sqlkv::SqlEngine engine(&sim, &node, sqlkv::SqlEngineOptions{});
  for (uint64_t k = 0; k < 100; ++k) {
    ASSERT_TRUE(engine.LoadRecord(k, 1024).ok());
  }
  // 50 updates + 20 inserts, all awaited to acknowledgement.
  sim::Latch done(&sim, 70);
  std::vector<sqlkv::OpOutcome> outs(70);
  for (int i = 0; i < 50; ++i) {
    engine.Update(static_cast<uint64_t>(i), 100, &outs[i], &done);
  }
  for (int i = 0; i < 20; ++i) {
    engine.Insert(1000 + static_cast<uint64_t>(i), 1024, &outs[50 + i],
                  &done);
  }
  sim.Run();
  ASSERT_EQ(done.count(), 0);

  auto report = engine.SimulateCrashAndRecover();
  EXPECT_EQ(report.acknowledged_writes, 70);
  EXPECT_EQ(report.lost_acknowledged_writes, 0);
  // Every acknowledged write has a durable redo record.
  EXPECT_GE(report.redo_records, 70);
}

TEST(DurabilityTest, SqlCheckpointTruncatesRedoWork) {
  sim::Simulation sim;
  cluster::Node node(&sim, 0, cluster::NodeConfig{});
  sqlkv::SqlEngineOptions opt;
  opt.checkpoint_interval = 200 * kMillisecond;
  sqlkv::SqlEngine engine(&sim, &node, opt);
  ASSERT_TRUE(engine.LoadRecord(1, 1024).ok());
  engine.Start();
  {
    sim::Latch done(&sim, 1);
    sqlkv::OpOutcome out;
    engine.Update(1, 100, &out, &done);
    sim.Run(kSecond);  // let the checkpointer run
  }
  engine.Stop();
  EXPECT_GE(engine.checkpoints(), 1);
  // After a checkpoint, the redo suffix is empty (or tiny).
  auto report = engine.SimulateCrashAndRecover();
  EXPECT_EQ(report.redo_records, 0);
  EXPECT_EQ(report.lost_acknowledged_writes, 0);
}

TEST(DurabilityTest, SqlCrashExactlyAtCheckpointBoundary) {
  // A crash landing exactly on a checkpoint boundary has an empty redo
  // suffix; writes after the boundary are exactly the suffix.
  sim::Simulation sim;
  cluster::Node node(&sim, 0, cluster::NodeConfig{});
  sqlkv::SqlEngine engine(&sim, &node, sqlkv::SqlEngineOptions{});
  for (uint64_t k = 0; k < 100; ++k) {
    ASSERT_TRUE(engine.LoadRecord(k, 1024).ok());
  }
  {
    sim::Latch done(&sim, 50);
    std::vector<sqlkv::OpOutcome> outs(50);
    for (int i = 0; i < 50; ++i) {
      engine.Update(static_cast<uint64_t>(i), 100, &outs[i], &done);
    }
    sim.Run();
    ASSERT_EQ(done.count(), 0);
  }
  engine.log().NoteCheckpoint();  // the boundary
  auto at_boundary = engine.SimulateCrashAndRecover();
  EXPECT_EQ(at_boundary.redo_records, 0);
  EXPECT_EQ(at_boundary.lost_acknowledged_writes, 0);

  {
    sim::Latch done(&sim, 20);
    std::vector<sqlkv::OpOutcome> outs(20);
    for (int i = 0; i < 20; ++i) {
      engine.Update(static_cast<uint64_t>(i), 100, &outs[i], &done);
    }
    sim.Run();
    ASSERT_EQ(done.count(), 0);
  }
  auto after_boundary = engine.SimulateCrashAndRecover();
  EXPECT_EQ(after_boundary.redo_records, 20);
  EXPECT_EQ(after_boundary.lost_acknowledged_writes, 0);
}

TEST(DurabilityTest, SqlCrashWithEmptyRedoStreamRecoversCleanly) {
  // Crash before any write: recovery replays nothing, re-validates the
  // structures, and reopens for business.
  sim::Simulation sim;
  cluster::Node node(&sim, 0, cluster::NodeConfig{});
  sqlkv::SqlEngine engine(&sim, &node, sqlkv::SqlEngineOptions{});
  for (uint64_t k = 0; k < 100; ++k) {
    ASSERT_TRUE(engine.LoadRecord(k, 1024).ok());
  }
  engine.Crash();
  EXPECT_TRUE(engine.crashed());

  // A crashed engine fails fast with a retryable error.
  sqlkv::OpOutcome rejected;
  {
    sim::Latch done(&sim, 1);
    engine.Read(5, &rejected, &done);
    sim.Run();
    EXPECT_EQ(done.count(), 0);
  }
  EXPECT_FALSE(rejected.ok);
  EXPECT_TRUE(rejected.transient_error);

  sqlkv::SqlEngine::RecoveryReport report;
  sim::Latch recovered(&sim, 1);
  engine.Restart(&report, &recovered);
  sim.Run();
  ASSERT_EQ(recovered.count(), 0);
  EXPECT_EQ(report.redo_records, 0);
  EXPECT_EQ(report.lost_acknowledged_writes, 0);
  EXPECT_FALSE(engine.crashed());
  EXPECT_EQ(engine.recoveries(), 1);

  sqlkv::OpOutcome served;
  {
    sim::Latch done(&sim, 1);
    engine.Read(5, &served, &done);
    sim.Run();
  }
  EXPECT_TRUE(served.ok);
  EXPECT_FALSE(served.transient_error);
}

TEST(DurabilityTest, SqlCrashDuringGroupCommitWindowIsAckedOnly) {
  // Crash while a batch of commits is inside the group-commit window:
  // in-flight transactions drain (their log batch still reaches the
  // disk before they acknowledge), new work is refused, and recovery
  // covers every acknowledged write — the acked-only contract.
  sim::Simulation sim;
  cluster::Node node(&sim, 0, cluster::NodeConfig{});
  sqlkv::SqlEngine engine(&sim, &node, sqlkv::SqlEngineOptions{});
  for (uint64_t k = 0; k < 100; ++k) {
    ASSERT_TRUE(engine.LoadRecord(k, 1024).ok());
  }
  sim::Latch done(&sim, 30);
  std::vector<sqlkv::OpOutcome> outs(30);
  for (int i = 0; i < 30; ++i) {
    engine.Update(static_cast<uint64_t>(i), 100, &outs[i], &done);
  }
  sim.Run(sim.now() + 300);  // mid-window: nothing acknowledged yet
  engine.Crash();

  sqlkv::OpOutcome rejected;
  sim::Latch rejected_done(&sim, 1);
  engine.Update(1, 100, &rejected, &rejected_done);
  sim.Run();  // drain: outstanding batches flush, in-flight ops ack
  ASSERT_EQ(done.count(), 0);
  EXPECT_TRUE(rejected.transient_error);

  int64_t acked = 0;
  for (const auto& o : outs) {
    if (o.ok) acked++;
  }
  EXPECT_EQ(acked, 30);  // already-admitted work drains normally

  sqlkv::SqlEngine::RecoveryReport report;
  sim::Latch recovered(&sim, 1);
  engine.Restart(&report, &recovered);
  sim.Run();
  ASSERT_EQ(recovered.count(), 0);
  EXPECT_EQ(report.acknowledged_writes, acked);
  EXPECT_GE(report.redo_records, acked);
  EXPECT_EQ(report.lost_acknowledged_writes, 0);
}

TEST(DurabilityTest, MongoAcknowledgedWritesAreLostOnCrash) {
  sim::Simulation sim;
  cluster::Node node(&sim, 0, cluster::NodeConfig{});
  docstore::MongodOptions opt;
  opt.flush_interval = 60 * kSecond;  // the crash happens well before
  docstore::Mongod mongod(&sim, &node, opt, "m");
  for (uint64_t k = 0; k < 100; ++k) {
    ASSERT_TRUE(mongod.LoadDocument(k, 1024).ok());
  }
  mongod.Start();
  sim::Latch done(&sim, 30);
  std::vector<sqlkv::OpOutcome> outs(30);
  for (int i = 0; i < 30; ++i) {
    mongod.Update(static_cast<uint64_t>(i), 100, &outs[i], &done);
  }
  sim.Run(5 * kSecond);
  ASSERT_EQ(done.count(), 0);
  for (const auto& o : outs) EXPECT_TRUE(o.ok);  // all ACKNOWLEDGED

  // ... and all lost: no journal, flusher hasn't run yet.
  EXPECT_EQ(mongod.UnflushedAcknowledgedWrites(), 30);
  EXPECT_EQ(mongod.SimulateCrashAndRecover(), 30);
}

TEST(DurabilityTest, MongoFlusherShrinksTheLossWindow) {
  sim::Simulation sim;
  cluster::Node node(&sim, 0, cluster::NodeConfig{});
  docstore::MongodOptions opt;
  opt.flush_interval = 100 * kMillisecond;
  docstore::Mongod mongod(&sim, &node, opt, "m");
  for (uint64_t k = 0; k < 100; ++k) {
    ASSERT_TRUE(mongod.LoadDocument(k, 1024).ok());
  }
  mongod.Start();
  sim::Latch done(&sim, 10);
  std::vector<sqlkv::OpOutcome> outs(10);
  for (int i = 0; i < 10; ++i) {
    mongod.Update(static_cast<uint64_t>(i), 100, &outs[i], &done);
  }
  sim.Run(2 * kSecond);  // several flush cycles pass
  mongod.Stop();
  EXPECT_EQ(mongod.UnflushedAcknowledgedWrites(), 0);
  EXPECT_EQ(mongod.SimulateCrashAndRecover(), 0);
}

TEST(DurabilityTest, MongoCrashRestartLedgerBoundsTheLossWindow) {
  sim::Simulation sim;
  cluster::Node node(&sim, 0, cluster::NodeConfig{});
  docstore::MongodOptions opt;
  opt.flush_interval = 200 * kMillisecond;
  docstore::Mongod mongod(&sim, &node, opt, "m");
  for (uint64_t k = 0; k < 100; ++k) {
    ASSERT_TRUE(mongod.LoadDocument(k, 1024).ok());
  }
  mongod.Start();
  {
    sim::Latch done(&sim, 10);
    std::vector<sqlkv::OpOutcome> outs(10);
    for (int i = 0; i < 10; ++i) {
      mongod.Update(static_cast<uint64_t>(i), 100, &outs[i], &done);
    }
    sim.Run(kSecond);  // several flush cycles pass
    ASSERT_EQ(done.count(), 0);
  }
  // Crash after the flusher caught up: nothing lost, and the window is
  // bounded by the flush cadence plus one in-flight pass.
  mongod.Crash();
  EXPECT_TRUE(mongod.crashed());
  EXPECT_EQ(mongod.lost_acked_total(), 0);
  EXPECT_LE(mongod.max_loss_window(), opt.flush_interval * 2);
  mongod.Restart();
  EXPECT_FALSE(mongod.crashed());
  EXPECT_EQ(mongod.crashes(), 1);
  EXPECT_EQ(mongod.restarts(), 1);

  // With the flusher stopped, every new acknowledged write is at risk
  // and a second crash loses exactly those.
  mongod.Stop();
  sim.Run(sim.now() + 2 * opt.flush_interval);  // let the flusher exit
  {
    sim::Latch done(&sim, 10);
    std::vector<sqlkv::OpOutcome> outs(10);
    for (int i = 0; i < 10; ++i) {
      mongod.Update(100 - 1 - static_cast<uint64_t>(i), 100, &outs[i],
                    &done);
    }
    sim.Run();
    ASSERT_EQ(done.count(), 0);
  }
  EXPECT_EQ(mongod.UnflushedAcknowledgedWrites(), 10);
  mongod.Crash();
  EXPECT_EQ(mongod.lost_acked_total(), 10);
  EXPECT_EQ(mongod.crashes(), 2);
  EXPECT_GT(mongod.max_loss_window(), 0);
}

TEST(DurabilityTest, LogRecordsCarryRedoInformation) {
  sim::Simulation sim;
  sqlkv::GroupCommitLog log(&sim, {});
  sim::Latch done(&sim, 2);
  sqlkv::LogRecord u;
  u.kind = sqlkv::LogRecord::Kind::kUpdate;
  u.key = 42;
  u.bytes = 100;
  log.Append(160, &done, u);
  sqlkv::LogRecord i;
  i.kind = sqlkv::LogRecord::Kind::kInsert;
  i.key = 43;
  i.bytes = 1024;
  log.Append(1184, &done, i);
  sim.Run();
  auto records = log.DurableRecords();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].key, 42u);
  EXPECT_EQ(records[0].kind, sqlkv::LogRecord::Kind::kUpdate);
  EXPECT_EQ(records[1].key, 43u);
  EXPECT_LT(records[0].lsn, records[1].lsn);
  // Checkpoint advances the redo start point.
  log.NoteCheckpoint();
  EXPECT_TRUE(log.DurableRecords(log.checkpoint_lsn()).empty());
}

}  // namespace
}  // namespace elephant
