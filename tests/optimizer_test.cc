// The cost-based join-order optimizer: the decision procedure behind
// the paper's PDW plans ("cost-based methods that minimize network
// transfers"). Tests check that on TPC-H-shaped join graphs it derives
// exactly the choices §3.3.4.1 describes.

#include <gtest/gtest.h>

#include "pdw/optimizer.h"

namespace elephant::pdw {
namespace {

// Relation sizes at SF 1000 in GB-ish units (bytes here are arbitrary
// consistent units; the optimizer only compares them).
OptRelation Lineitem() { return {"lineitem", 6e9, 725e9, "l_orderkey"}; }
OptRelation Orders() { return {"orders", 1.5e9, 160e9, "o_orderkey"}; }
OptRelation Customer() { return {"customer", 150e6, 25e9, "c_custkey"}; }
OptRelation PartFiltered() {
  // Q19's part after its brand/container predicate: tiny.
  return {"part", 1.3e6, 0.3e9, "p_partkey"};
}
OptRelation Nation() {
  OptRelation r{"nation", 25, 1e3, ""};
  r.replicated = true;
  return r;
}

TEST(OptimizerTest, Q19ReplicatesTheFilteredPart) {
  // lineitem ⋈ part on partkey: lineitem is partitioned on orderkey, so
  // either lineitem is shuffled (725 GB) or part is replicated
  // (0.3 GB x 15). The paper: "PDW first replicates the part table".
  std::vector<OptRelation> rels = {Lineitem(), PartFiltered()};
  std::vector<OptJoin> joins = {{0, 1, "l_partkey", "p_partkey", 1e-9}};
  auto plan = Optimize(rels, joins);
  ASSERT_TRUE(plan.ok()) << plan.status();
  ASSERT_EQ(plan.value().steps.size(), 1u);
  // Whichever side the DP started from, the movement must be a
  // replication of part-sized bytes, never a lineitem shuffle.
  EXPECT_LT(plan.value().network_bytes, 10e9);
}

TEST(OptimizerTest, LocalJoinWhenCoPartitioned) {
  // lineitem ⋈ orders on orderkey: both partitioned on it -> no bytes.
  std::vector<OptRelation> rels = {Lineitem(), Orders()};
  std::vector<OptJoin> joins = {{0, 1, "l_orderkey", "o_orderkey", 1e-9}};
  auto plan = Optimize(rels, joins);
  ASSERT_TRUE(plan.ok());
  EXPECT_DOUBLE_EQ(plan.value().network_bytes, 0.0);
  EXPECT_EQ(plan.value().steps[0].movement, Movement::kNone);
}

TEST(OptimizerTest, Q5ShapeNeverMovesLineitem) {
  // customer ⋈ orders (custkey), orders ⋈ lineitem (orderkey): the
  // paper's plan shuffles orders onto custkey and the join result back
  // onto orderkey — lineitem (725 GB) never crosses the wire.
  std::vector<OptRelation> rels = {Customer(), Orders(), Lineitem()};
  std::vector<OptJoin> joins = {
      {0, 1, "c_custkey", "o_custkey", 1.0 / 150e6},
      {1, 2, "o_orderkey", "l_orderkey", 1.0 / 1.5e9}};
  auto plan = Optimize(rels, joins);
  ASSERT_TRUE(plan.ok()) << plan.status();
  // Lineitem's 725 GB must not be part of the movement.
  EXPECT_LT(plan.value().network_bytes, 400e9);
  // And no step moves lineitem (index 2) by shuffle/replicate of its
  // full size.
  for (const auto& step : plan.value().steps) {
    if (step.right_rel == 2) {
      EXPECT_LT(step.network_bytes, 725e9 * 0.9);
    }
  }
}

TEST(OptimizerTest, ReplicatedDimensionsAreFree) {
  std::vector<OptRelation> rels = {Customer(), Nation()};
  std::vector<OptJoin> joins = {{0, 1, "c_nationkey", "n_nationkey", 0.04}};
  auto plan = Optimize(rels, joins);
  ASSERT_TRUE(plan.ok());
  EXPECT_DOUBLE_EQ(plan.value().network_bytes, 0.0);
}

TEST(OptimizerTest, CostBasedBeatsScriptOrder) {
  // A Q5-like chain evaluated both ways: the script-order common-join
  // plan repartitions both inputs of every join.
  std::vector<OptRelation> rels = {Customer(), Orders(), Lineitem()};
  std::vector<OptJoin> joins = {
      {0, 1, "c_custkey", "o_custkey", 1.0 / 150e6},
      {1, 2, "o_orderkey", "l_orderkey", 1.0 / 1.5e9}};
  OptimizerOptions naive;
  naive.cost_based = false;
  auto smart = Optimize(rels, joins);
  auto script = Optimize(rels, joins, naive);
  ASSERT_TRUE(smart.ok());
  ASSERT_TRUE(script.ok());
  EXPECT_LT(smart.value().network_bytes, script.value().network_bytes / 2);
}

TEST(OptimizerTest, StarJoinPicksSelectiveDimensionFirst) {
  // Fact table with two dimensions: joining the selective one first
  // shrinks the stream before the second join's movement.
  OptRelation fact{"fact", 1e9, 100e9, "f_key"};
  OptRelation selective{"dim_a", 1e3, 1e6, "a_key"};
  OptRelation broad{"dim_b", 1e8, 10e9, "b_key"};
  std::vector<OptRelation> rels = {fact, selective, broad};
  std::vector<OptJoin> joins = {
      {0, 1, "f_a", "a_key", 1e-6 / 1e3},   // keeps 0.0001% of fact
      {0, 2, "f_b", "b_key", 1.0 / 1e8}};   // keeps all of fact
  auto plan = Optimize(rels, joins);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan.value().steps.size(), 2u);
  // Far cheaper than moving the full fact table twice.
  EXPECT_LT(plan.value().network_bytes, 20e9);
}

TEST(OptimizerTest, RejectsBadInputs) {
  EXPECT_FALSE(Optimize({}, {}).ok());
  // Disconnected graph.
  std::vector<OptRelation> rels = {Customer(), Orders(), Lineitem()};
  std::vector<OptJoin> joins = {
      {0, 1, "c_custkey", "o_custkey", 1e-8}};
  EXPECT_FALSE(Optimize(rels, joins).ok());
  // Join referencing a missing relation.
  std::vector<OptJoin> bad = {{0, 7, "a", "b", 1.0},
                              {0, 1, "c_custkey", "o_custkey", 1e-8}};
  EXPECT_FALSE(Optimize({Customer(), Orders()}, bad).ok());
}

TEST(OptimizerTest, MovementNamesAreStable) {
  EXPECT_STREQ(MovementName(Movement::kNone), "local");
  EXPECT_STREQ(MovementName(Movement::kReplicateRight),
               "replicate-relation");
}

}  // namespace
}  // namespace elephant::pdw
