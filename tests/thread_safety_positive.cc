// Compile-only fixture for Clang Thread Safety Analysis (DESIGN.md
// §13). This TU exercises every annotation idiom the tree relies on
// and must compile CLEAN under -Werror=thread-safety; its sibling,
// thread_safety_negative.cc, makes the mirror-image mistakes and must
// FAIL the same compile. Together they prove the analysis is actually
// wired up — a toolchain that silently ignored the attributes would
// pass a clean build of the whole tree without checking anything.
//
// Registered by tests/CMakeLists.txt as a -fsyntax-only ctest entry
// when ELEPHANT_THREAD_SAFETY=ON under clang. Never linked.

#include <cstdint>
#include <deque>

#include "common/thread_annotations.h"

namespace elephant {
namespace {

// The repo's standard shape: state guarded by a member mutex, accessed
// through MutexLock or through REQUIRES-annotated private helpers.
class Counter {
 public:
  void Add(int64_t delta) {
    MutexLock lock(&mu_);
    AddLocked(delta);
  }

  int64_t Get() const {
    MutexLock lock(&mu_);
    return value_;
  }

  // Callers that already hold the lock use the REQUIRES entry point.
  void AddLocked(int64_t delta) ELEPHANT_REQUIRES(mu_) { value_ += delta; }

 private:
  mutable Mutex mu_;
  int64_t value_ ELEPHANT_GUARDED_BY(mu_) = 0;
};

// Producer/consumer with CondVar: Wait-loop under the lock, the
// task_pool.cc idiom.
class Queue {
 public:
  void Push(int64_t v) {
    MutexLock lock(&mu_);
    items_.push_back(v);
    cv_.NotifyOne();
  }

  int64_t Pop() {
    MutexLock lock(&mu_);
    while (items_.empty()) {
      cv_.WaitFor(lock, std::chrono::milliseconds(10),
                  [this]() ELEPHANT_REQUIRES(mu_) { return !items_.empty(); });
    }
    int64_t v = items_.front();
    items_.pop_front();
    return v;
  }

 private:
  Mutex mu_;
  CondVar cv_;
  std::deque<int64_t> items_ ELEPHANT_GUARDED_BY(mu_);
};

// Manual Lock/Unlock paths (EXCLUDES documents "must not already hold").
class Manual {
 public:
  void Touch() ELEPHANT_EXCLUDES(mu_) {
    mu_.Lock();
    value_ = 1;
    mu_.Unlock();
  }

  bool TryTouch() ELEPHANT_EXCLUDES(mu_) {
    if (!mu_.TryLock()) return false;
    value_ = 2;
    mu_.Unlock();
    return true;
  }

 private:
  Mutex mu_;
  int64_t value_ ELEPHANT_GUARDED_BY(mu_) = 0;
};

void Drive() {
  Counter c;
  c.Add(1);
  (void)c.Get();          // elephant-lint: allow(discarded-status)
  Queue q;
  q.Push(7);
  (void)q.Pop();          // elephant-lint: allow(discarded-status)
  Manual m;
  m.Touch();
  (void)m.TryTouch();     // elephant-lint: allow(discarded-status)
}

}  // namespace
}  // namespace elephant

int main() {
  elephant::Drive();
  return 0;
}
