// Simulation determinism: the whole benchmark is a deterministic
// discrete-event program, so two runs with the same seed and
// configuration must be bit-identical — same event counts, same stats
// down to the last ULP. These tests run scaled-down double runs of one
// YCSB path and one TPC-H path and compare fingerprints.

#include <gtest/gtest.h>

#include <vector>

#include "common/fingerprint.h"
#include "common/task_pool.h"
#include "tpch/dss_benchmark.h"
#include "ycsb/driver.h"
#include "ycsb/workload.h"

namespace elephant {
namespace {

// --------------------------------------------------------------- YCSB

ycsb::DriverOptions SmallOptions() {
  ycsb::DriverOptions opt;
  opt.record_count = 40000;
  opt.warmup = kSecond;
  opt.measure = 2 * kSecond;
  return opt;
}

TEST(DeterminismTest, YcsbSameSeedRunsAreBitIdentical) {
  Status st = ycsb::VerifyDeterminism(ycsb::SystemKind::kSqlCs,
                                      ycsb::WorkloadSpec::B(),
                                      /*target_throughput=*/4000,
                                      SmallOptions());
  EXPECT_TRUE(st.ok()) << st.ToString();
}

TEST(DeterminismTest, YcsbMongoPathIsDeterministicToo) {
  Status st = ycsb::VerifyDeterminism(ycsb::SystemKind::kMongoAs,
                                      ycsb::WorkloadSpec::A(),
                                      /*target_throughput=*/4000,
                                      SmallOptions());
  EXPECT_TRUE(st.ok()) << st.ToString();
}

TEST(DeterminismTest, FingerprintIndependentOfHostThreadCount) {
  // Each simulation cell runs on exactly one worker thread; which
  // thread (and how many siblings run concurrently) must not leak into
  // the modeled numbers. Run the same point serially and fanned out on
  // an 8-worker pool: every fingerprint must match the serial one.
  // This also exercises the per-thread coroutine FrameArena from
  // multiple threads at once.
  ycsb::RunResult serial = ycsb::RunOnePoint(
      ycsb::SystemKind::kSqlCs, ycsb::WorkloadSpec::B(), 4000,
      SmallOptions());
  TaskPool pool(8);
  std::vector<ycsb::RunResult> parallel(8);
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&parallel, i] {
      parallel[i] = ycsb::RunOnePoint(ycsb::SystemKind::kSqlCs,
                                      ycsb::WorkloadSpec::B(), 4000,
                                      SmallOptions());
    });
  }
  pool.WaitIdle();
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(parallel[i].Fingerprint(), serial.Fingerprint())
        << "cell " << i;
  }
}

TEST(DeterminismTest, DifferentSeedsDiverge) {
  // Sanity check that the fingerprint actually discriminates: changing
  // the seed must change at least the measured stats.
  ycsb::DriverOptions a = SmallOptions();
  ycsb::DriverOptions b = SmallOptions();
  b.seed = a.seed + 1;
  ycsb::RunResult ra = ycsb::RunOnePoint(ycsb::SystemKind::kSqlCs,
                                         ycsb::WorkloadSpec::B(), 4000, a);
  ycsb::RunResult rb = ycsb::RunOnePoint(ycsb::SystemKind::kSqlCs,
                                         ycsb::WorkloadSpec::B(), 4000, b);
  EXPECT_NE(ra.Fingerprint(), rb.Fingerprint());
}

// -------------------------------------------------------------- TPC-H

uint64_t FingerprintHive(const hive::HiveQueryResult& r) {
  Fingerprint fp;
  fp.Mix(static_cast<int64_t>(r.query));
  fp.Mix(static_cast<int64_t>(r.total));
  fp.Mix(r.intermediate_bytes);
  fp.Mix(r.failed_out_of_disk);
  fp.Mix(static_cast<int64_t>(r.jobs.size()));
  return fp.value();
}

uint64_t FingerprintPdw(const pdw::PdwQueryResult& r) {
  Fingerprint fp;
  fp.Mix(static_cast<int64_t>(r.query));
  fp.Mix(static_cast<int64_t>(r.total));
  for (const auto& [name, t] : r.steps) {
    fp.Mix(name);
    fp.Mix(static_cast<int64_t>(t));
  }
  return fp.value();
}

TEST(DeterminismTest, TpchDoubleRunIsBitIdentical) {
  // Two independent benchmark instances (fresh cluster, DFS, engines)
  // must produce identical query results for the same (query, SF).
  tpch::DssBenchmark bench1;
  tpch::DssBenchmark bench2;
  for (int query : {1, 12}) {
    hive::HiveQueryResult h1 = bench1.RunHive(query, 250);
    hive::HiveQueryResult h2 = bench2.RunHive(query, 250);
    EXPECT_EQ(FingerprintHive(h1), FingerprintHive(h2)) << "Q" << query;
    EXPECT_EQ(h1.total, h2.total) << "Q" << query;

    pdw::PdwQueryResult p1 = bench1.RunPdw(query, 250);
    pdw::PdwQueryResult p2 = bench2.RunPdw(query, 250);
    EXPECT_EQ(FingerprintPdw(p1), FingerprintPdw(p2)) << "Q" << query;
    EXPECT_EQ(p1.total, p2.total) << "Q" << query;
  }
}

}  // namespace
}  // namespace elephant
