// Tests for the structural validators and the check framework: each
// corruption fixture damages one invariant through a test-only back
// door and asserts ValidateInvariants() reports it, and the simulated
// deadlock detector (Simulation::CheckQuiescent) is exercised both ways.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "common/check.h"
#include "exec/table.h"
#include "exec/zonemap.h"
#include "sim/simulation.h"
#include "sqlkv/btree.h"
#include "sqlkv/buffer_pool.h"
#include "sqlkv/engine.h"
#include "sqlkv/lock_manager.h"
#include "sqlkv/wal.h"

namespace elephant::sqlkv {
namespace {

// ------------------------------------------------- B+tree corruption

void FillMultiLevel(BTree* tree) {
  for (uint64_t k = 0; k < 2000; ++k) {
    ASSERT_TRUE(tree->Insert(k * 3, {"", 100}).ok());
  }
  ASSERT_TRUE(tree->ValidateInvariants().ok());
  ASSERT_GT(tree->height(), 1);
}

TEST(BTreeInvariantsTest, CleanTreeValidates) {
  BTree tree(4096);
  FillMultiLevel(&tree);
  EXPECT_TRUE(tree.ValidateInvariants().ok());
}

TEST(BTreeInvariantsTest, CatchesKeyOrderingViolation) {
  BTree tree(4096);
  FillMultiLevel(&tree);
  ASSERT_TRUE(BTreeTestCorruptor::SwapLeafKeys(&tree));
  Status st = tree.ValidateInvariants();
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("sorted"), std::string::npos) << st.ToString();
}

TEST(BTreeInvariantsTest, CatchesBrokenLeafChain) {
  BTree tree(4096);
  FillMultiLevel(&tree);
  ASSERT_TRUE(BTreeTestCorruptor::BreakLeafChain(&tree));
  Status st = tree.ValidateInvariants();
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("chain"), std::string::npos) << st.ToString();
}

TEST(BTreeInvariantsTest, CatchesByteAccountingSkew) {
  BTree tree(4096);
  FillMultiLevel(&tree);
  BTreeTestCorruptor::SkewUsedBytes(&tree, 64);
  EXPECT_FALSE(tree.ValidateInvariants().ok());
}

TEST(BTreeInvariantsTest, OccupancySkewPastBudgetCaught) {
  BTree tree(4096);
  FillMultiLevel(&tree);
  // Skew one leaf's accounting far past the page budget: both the
  // occupancy bound and the per-leaf byte audit must object.
  BTreeTestCorruptor::SkewUsedBytes(&tree, 1 << 20);
  EXPECT_FALSE(tree.ValidateInvariants().ok());
}

// ---------------------------------------------------- WAL corruption

TEST(WalInvariantsTest, CleanLogValidates) {
  sim::Simulation sim;
  GroupCommitLog log(&sim, {});
  sim::Latch done(&sim, 8);
  for (int i = 0; i < 8; ++i) {
    log.Append(100, &done, {LogRecord::Kind::kUpdate, /*key=*/static_cast<uint64_t>(i), 100, 0});
  }
  sim.Run();
  ASSERT_EQ(done.count(), 0);
  EXPECT_TRUE(log.ValidateInvariants().ok());
  EXPECT_EQ(log.next_lsn(), 8);
}

TEST(WalInvariantsTest, ValidatesMidFlush) {
  // The validator must hold while a batch is in flight on the simulated
  // log disk (records in neither pending_ nor durable_).
  sim::Simulation sim;
  GroupCommitLog::Options opt;
  opt.flush_latency = 1000;
  GroupCommitLog log(&sim, opt);
  sim::Latch done(&sim, 4);
  for (int i = 0; i < 4; ++i) log.Append(100, &done);
  sim.Run(/*until=*/500);  // stop mid-flush
  EXPECT_TRUE(log.ValidateInvariants().ok());
  sim.Run();
  EXPECT_TRUE(log.ValidateInvariants().ok());
}

TEST(WalInvariantsTest, CatchesLsnRegression) {
  sim::Simulation sim;
  GroupCommitLog log(&sim, {});
  for (int i = 0; i < 3; ++i) {
    sim::Latch done(&sim, 1);
    log.Append(100, &done, {LogRecord::Kind::kInsert, /*key=*/static_cast<uint64_t>(i), 100, 0});
    sim.Run();
  }
  ASSERT_TRUE(log.ValidateInvariants().ok());
  ASSERT_TRUE(WalTestCorruptor::RegressLastDurableLsn(&log));
  Status st = log.ValidateInvariants();
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("monotone"), std::string::npos)
      << st.ToString();
}

TEST(WalInvariantsTest, CatchesCheckpointBeyondTail) {
  sim::Simulation sim;
  GroupCommitLog log(&sim, {});
  sim::Latch done(&sim, 1);
  log.Append(100, &done);
  sim.Run();
  ASSERT_TRUE(log.ValidateInvariants().ok());
  WalTestCorruptor::OverrunCheckpoint(&log);
  Status st = log.ValidateInvariants();
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("checkpoint"), std::string::npos)
      << st.ToString();
}

// --------------------------------------------------------- BufferPool

TEST(BufferPoolInvariantsTest, HoldsThroughChurn) {
  BufferPool pool(/*capacity_bytes=*/16 * 8192, /*page_bytes=*/8192);
  for (uint64_t p = 0; p < 100; ++p) {
    pool.Touch(p % 37, /*mark_dirty=*/(p % 3) == 0);
    ASSERT_TRUE(pool.ValidateInvariants().ok()) << "page " << p;
  }
  for (uint64_t p : pool.DirtyPages()) pool.MarkClean(p);
  EXPECT_EQ(pool.dirty_count(), 0u);
  EXPECT_TRUE(pool.ValidateInvariants().ok());
}

// -------------------------------------------------------- LockManager

sim::Task AcquireRelease(LockManager* mgr, uint64_t key, sim::Latch* done) {
  co_await mgr->LockFor(key).AcquireExclusive();
  mgr->NoteAcquisition();
  mgr->Release(key, /*exclusive=*/true);
  done->CountDown();
}

TEST(LockManagerInvariantsTest, QuiescedAfterRelease) {
  sim::Simulation sim;
  LockManager mgr(&sim);
  sim::Latch done(&sim, 3);
  for (uint64_t k : {1u, 2u, 3u}) AcquireRelease(&mgr, k, &done);
  sim.Run();
  ASSERT_EQ(done.count(), 0);
  EXPECT_TRUE(mgr.ValidateInvariants().ok());
  EXPECT_TRUE(mgr.ValidateQuiesced().ok());
  EXPECT_EQ(mgr.active_locks(), 0u);
}

sim::Task HoldForever(LockManager* mgr, uint64_t key) {
  co_await mgr->LockFor(key).AcquireExclusive();
  // Never released: the entry must be reported by ValidateQuiesced but
  // tolerated by ValidateInvariants (held locks are justified).
}

TEST(LockManagerInvariantsTest, LeakedLockReported) {
  sim::Simulation sim;
  LockManager mgr(&sim);
  HoldForever(&mgr, 42);
  sim.Run();
  EXPECT_TRUE(mgr.ValidateInvariants().ok());
  Status st = mgr.ValidateQuiesced();
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("42"), std::string::npos) << st.ToString();
  mgr.Release(42, /*exclusive=*/true);
  EXPECT_TRUE(mgr.ValidateQuiesced().ok());
}

// ------------------------------------------- stuck-waiter / deadlock

sim::Task ParkOn(sim::Latch* latch) { co_await latch->Wait(); }

TEST(CheckQuiescentTest, QuiescentSimulationPasses) {
  sim::Simulation sim;
  sim::Latch latch(&sim, 1);
  ParkOn(&latch);
  EXPECT_EQ(sim.parked_coroutines(), 1u);
  std::vector<std::string> report = sim.StuckWaiterReport();
  ASSERT_EQ(report.size(), 1u);
  EXPECT_NE(report[0].find("Latch"), std::string::npos) << report[0];
  latch.CountDown();  // releases the waiter; the frame completes
  sim.Run();
  EXPECT_EQ(sim.parked_coroutines(), 0u);
  EXPECT_TRUE(sim.StuckWaiterReport().empty());
  sim.CheckQuiescent();  // must not abort
}

// Built inside the death-test child so the parent never parks a frame.
void DrainWithParkedCoroutine() {
  sim::Simulation sim;
  sim::Latch latch(&sim, 1);  // nobody will count this down
  ParkOn(&latch);
  sim.Run();
  sim.CheckQuiescent();
}

TEST(CheckQuiescentDeathTest, DrainedLoopWithParkedWaiterAborts) {
  EXPECT_DEATH(DrainWithParkedCoroutine(), "still parked");
}

sim::Task ParkOnPooledLatch(sim::Simulation* sim) {
  sim::PooledLatch latch(&sim->latch_pool(), 1);  // never counted down
  co_await latch->Wait();
}

TEST(CheckQuiescentTest, PooledLatchReportsStuckWaiter) {
  // Pooled primitives register with the Waitable registry once at
  // creation; a waiter stuck on one must still be named in the report.
  sim::Simulation sim;
  ParkOnPooledLatch(&sim);
  sim.Run();
  EXPECT_EQ(sim.parked_coroutines(), 1u);
  std::vector<std::string> report = sim.StuckWaiterReport();
  ASSERT_EQ(report.size(), 1u);
  EXPECT_NE(report[0].find("Latch"), std::string::npos) << report[0];
}

TEST(CheckQuiescentTest, IdlePooledLatchesReportNoWaiters) {
  // Recycled (idle) pooled latches must not produce false positives.
  sim::Simulation sim;
  auto op = [](sim::Simulation* s) -> sim::Task {
    sim::PooledLatch latch(&s->latch_pool(), 1);
    auto firer = [](sim::Simulation* s2, sim::Latch* l) -> sim::Task {
      co_await s2->Delay(5);
      l->CountDown();
    };
    firer(s, latch.get());
    co_await latch->Wait();
  };
  op(&sim);
  op(&sim);
  sim.Run();
  EXPECT_GE(sim.latch_pool().created(), 1u);
  EXPECT_EQ(sim.parked_coroutines(), 0u);
  EXPECT_TRUE(sim.StuckWaiterReport().empty());
  sim.CheckQuiescent();  // must not abort
}

void DrainWithParkedPooledWaiter() {
  sim::Simulation sim;
  ParkOnPooledLatch(&sim);
  sim.Run();
  sim.CheckQuiescent();
}

TEST(CheckQuiescentDeathTest, ParkedPooledWaiterAborts) {
  EXPECT_DEATH(DrainWithParkedPooledWaiter(), "still parked");
}

// --------------------------------------------------- check framework

TEST(CheckTest, PassingChecksAreSilent) {
  ELEPHANT_CHECK(1 + 1 == 2) << "arithmetic";
  ELEPHANT_DCHECK(true);
  ELEPHANT_CHECK_OK(Status::OK());
}

TEST(CheckTest, DcheckArgumentNotEvaluatedInRelease) {
  int evaluations = 0;
  auto count = [&evaluations]() {
    evaluations++;
    return true;
  };
  ELEPHANT_DCHECK(count());
#ifdef NDEBUG
  EXPECT_EQ(evaluations, 0);
#else
  EXPECT_EQ(evaluations, 1);
#endif
}

TEST(CheckDeathTest, FailureNamesConditionAndLocation) {
  EXPECT_DEATH(ELEPHANT_CHECK(2 + 2 == 5) << "math still works",
               "CHECK failed: 2 \\+ 2 == 5.*invariants_test.*math");
}

TEST(CheckDeathTest, CheckOkPrintsStatus) {
  EXPECT_DEATH(ELEPHANT_CHECK_OK(Status::Internal("disk on fire")),
               "disk on fire");
}

}  // namespace
}  // namespace elephant::sqlkv

// ----------------------------------------------- zone-map consistency
// Same corruption discipline as above: damage one invariant of a
// copied ZoneMaps struct and assert ValidateZoneMaps names it.

namespace elephant::exec {
namespace {

class ZoneMapInvariantsTest : public ::testing::Test {
 protected:
  void TearDown() override { SetZoneMapChunkRows(0); }
};

// "k" ascends (sorted flag must verify true), "v" wanders (must verify
// false), "s" is a dictionary column (codes carry no collation).
Table MakeZonedTable(size_t rows) {
  Table t({{"k", ValueType::kInt},
           {"v", ValueType::kDouble},
           {"s", ValueType::kString}});
  for (size_t i = 0; i < rows; ++i) {
    t.AddRow({Value{static_cast<int64_t>(i)},
              Value{static_cast<double>((i * 37) % 101) - 50.0},
              Value{std::string(i % 2 ? "odd" : "even")}});
  }
  return t;
}

TEST_F(ZoneMapInvariantsTest, CleanTableValidates) {
  SetZoneMapChunkRows(16);
  Table t = MakeZonedTable(100);
  auto zm = GetZoneMaps(t);
  ASSERT_NE(zm, nullptr);
  EXPECT_EQ(zm->num_chunks, 7u);  // ceil(100 / 16)
  EXPECT_TRUE(zm->cols[0].sorted_asc);   // verified, not declared
  EXPECT_FALSE(zm->cols[1].sorted_asc);
  EXPECT_FALSE(zm->cols[2].sorted_asc);
  ELEPHANT_CHECK_OK(ValidateZoneMaps(t, *zm));
}

TEST_F(ZoneMapInvariantsTest, CatchesBoundViolation) {
  SetZoneMapChunkRows(16);
  Table t = MakeZonedTable(100);
  auto zm = GetZoneMaps(t);
  ASSERT_NE(zm, nullptr);
  ZoneMaps bad = *zm;
  bad.cols[0].max[0] = -1.0;  // chunk 0 holds k in [0, 15]
  Status st = ValidateZoneMaps(t, bad);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("zone bound violated"), std::string::npos)
      << st.ToString();
}

TEST_F(ZoneMapInvariantsTest, CatchesSortedFlagLies) {
  SetZoneMapChunkRows(16);
  Table t = MakeZonedTable(100);
  auto zm = GetZoneMaps(t);
  ASSERT_NE(zm, nullptr);
  // Claiming order on an unsorted column and denying it on a sorted
  // one must both be reported.
  ZoneMaps claims = *zm;
  claims.cols[1].sorted_asc = true;
  Status st = ValidateZoneMaps(t, claims);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("sorted flag"), std::string::npos)
      << st.ToString();
  ZoneMaps denies = *zm;
  denies.cols[0].sorted_asc = false;
  st = ValidateZoneMaps(t, denies);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("sorted flag"), std::string::npos)
      << st.ToString();
}

TEST_F(ZoneMapInvariantsTest, CatchesSortedFlagOnDictionaryColumn) {
  SetZoneMapChunkRows(16);
  Table t = MakeZonedTable(100);
  auto zm = GetZoneMaps(t);
  ASSERT_NE(zm, nullptr);
  ZoneMaps bad = *zm;
  bad.cols[2].sorted_asc = true;
  Status st = ValidateZoneMaps(t, bad);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("sorted flag set on dictionary column"),
            std::string::npos)
      << st.ToString();
}

TEST_F(ZoneMapInvariantsTest, CatchesShapeSkew) {
  SetZoneMapChunkRows(16);
  Table t = MakeZonedTable(100);
  auto zm = GetZoneMaps(t);
  ASSERT_NE(zm, nullptr);
  ZoneMaps chunks = *zm;
  chunks.num_chunks += 1;
  Status st = ValidateZoneMaps(t, chunks);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("chunk count"), std::string::npos)
      << st.ToString();
  ZoneMaps rows = *zm;
  rows.rows += 5;
  st = ValidateZoneMaps(t, rows);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("row count"), std::string::npos)
      << st.ToString();
}

TEST_F(ZoneMapInvariantsTest, NaNChunksArePoisonedAndVerified) {
  SetZoneMapChunkRows(16);
  Table t = MakeZonedTable(100);
  ASSERT_TRUE(t.EnsureColumnar());
  t.MutableCol(1).doubles()[3] = std::numeric_limits<double>::quiet_NaN();
  auto zm = GetZoneMaps(t);
  ASSERT_NE(zm, nullptr);
  // The NaN chunk's bounds are poisoned (never prune, never
  // full-match) and the builder's output validates clean.
  EXPECT_TRUE(std::isnan(zm->cols[1].min[0]));
  EXPECT_TRUE(std::isnan(zm->cols[1].max[0]));
  ELEPHANT_CHECK_OK(ValidateZoneMaps(t, *zm));
  // Claiming poison on a NaN-free chunk is a reported mismatch.
  ZoneMaps bad = *zm;
  bad.cols[1].min[1] = std::numeric_limits<double>::quiet_NaN();
  bad.cols[1].max[1] = std::numeric_limits<double>::quiet_NaN();
  Status st = ValidateZoneMaps(t, bad);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("NaN poisoning mismatch"), std::string::npos)
      << st.ToString();
}

TEST_F(ZoneMapInvariantsTest, CacheDroppedByMutation) {
  SetZoneMapChunkRows(16);
  Table t = MakeZonedTable(100);
  auto before = GetZoneMaps(t);
  ASSERT_NE(before, nullptr);
  EXPECT_EQ(GetZoneMaps(t).get(), before.get());  // cached while valid
  t.AddRow({Value{int64_t{100}}, Value{0.0}, Value{std::string("odd")}});
  auto after = GetZoneMaps(t);
  ASSERT_NE(after, nullptr);
  EXPECT_NE(after.get(), before.get());
  EXPECT_EQ(after->rows, 101u);
  ELEPHANT_CHECK_OK(ValidateZoneMaps(t, *after));
}

}  // namespace
}  // namespace elephant::exec
