#include <gtest/gtest.h>

#include "hive/catalog.h"
#include "hive/engine.h"
#include "tpch/dss_benchmark.h"

namespace elephant::hive {
namespace {

using tpch::TableId;

TEST(HiveCatalogTest, Table1Layouts) {
  HiveCatalog cat;
  EXPECT_EQ(cat.layout(TableId::kLineitem).num_buckets, 512);
  EXPECT_EQ(cat.layout(TableId::kLineitem).bucket_column, "l_orderkey");
  EXPECT_EQ(cat.layout(TableId::kCustomer).partition_column, "c_nationkey");
  EXPECT_EQ(cat.layout(TableId::kCustomer).total_files(), 200);
  EXPECT_EQ(cat.layout(TableId::kSupplier).total_files(), 200);
  EXPECT_EQ(cat.layout(TableId::kPart).num_buckets, 8);
  EXPECT_TRUE(cat.layout(TableId::kNation).bucket_column.empty());
}

TEST(HiveCatalogTest, SparseOrderkeysLeave384EmptyFiles) {
  HiveCatalog cat;
  auto sizes = cat.ScanFileSizes(TableId::kLineitem, 250);
  ASSERT_EQ(sizes.size(), 512u);
  int empty = 0, nonempty = 0;
  for (size_t i = 0; i < sizes.size(); ++i) {
    if (sizes[i] == 0) {
      empty++;
    } else {
      nonempty++;
      EXPECT_LT(i % 32, 8u);  // populated buckets: first 8 of every 32
    }
  }
  EXPECT_EQ(empty, 384);
  EXPECT_EQ(nonempty, 128);
}

// §3.3.4.2 anchors: Q1 launches 512 map tasks at SF 250 and 768 at SF
// 1000 (3 blocks per non-empty lineitem bucket); Q22's customer scan
// runs 200 tasks below SF 16000 and 600 at SF 16000, with ~9.4 MB per
// bucket at SF 250.
TEST(HiveCatalogTest, MapTaskCountsMatchPaper) {
  HiveCatalog cat;
  EXPECT_EQ(cat.ScanTasks(TableId::kLineitem, 250, 0).size(), 512u);
  EXPECT_EQ(cat.ScanTasks(TableId::kLineitem, 1000, 0).size(), 768u);
  EXPECT_EQ(cat.ScanTasks(TableId::kCustomer, 250, 0).size(), 200u);
  EXPECT_EQ(cat.ScanTasks(TableId::kCustomer, 4000, 0).size(), 200u);
  EXPECT_EQ(cat.ScanTasks(TableId::kCustomer, 16000, 0).size(), 600u);
}

TEST(HiveCatalogTest, CustomerBucketBytesMatchPaper) {
  HiveCatalog cat;
  auto sizes = cat.ScanFileSizes(TableId::kCustomer, 250);
  // Paper: ~9.4 MB of compressed data per customer bucket at SF 250.
  EXPECT_NEAR(static_cast<double>(sizes[0]) / 1e6, 9.4, 1.5);
}

TEST(HiveCatalogTest, CompressionRatiosAreColumnar) {
  // Numeric lineitem compresses better than text-heavy customer.
  EXPECT_GT(RcfileCompressionRatio(TableId::kLineitem),
            RcfileCompressionRatio(TableId::kCustomer));
}

class HiveEngineTest : public ::testing::Test {
 protected:
  HiveEngineTest() : bench_() {}
  tpch::DssBenchmark bench_;
};

TEST_F(HiveEngineTest, EveryQueryBuildsJobs) {
  for (int q = 1; q <= 22; ++q) {
    auto jobs = BuildHiveJobs(q, 250, bench_.hive().catalog(),
                              bench_.hive().options());
    EXPECT_GE(jobs.size(), 1u) << "Q" << q;
    for (const auto& j : jobs) {
      EXPECT_FALSE(j.map_tasks.empty()) << j.name;
    }
  }
}

TEST_F(HiveEngineTest, Q22HasFourSubqueries) {
  auto r = bench_.RunHive(22, 250);
  for (int sq = 1; sq <= 4; ++sq) {
    EXPECT_GT(r.TimeOfJobsWithPrefix("q22_sq" + std::to_string(sq)), 0)
        << "sub-query " << sq;
  }
}

TEST_F(HiveEngineTest, Q22MapJoinFailsAndFallsBack) {
  auto jobs = BuildHiveJobs(22, 250, bench_.hive().catalog(),
                            bench_.hive().options());
  bool found_backup = false;
  for (const auto& j : jobs) {
    if (j.name.find("sq4_join1_backup_join") != std::string::npos) {
      found_backup = true;
      // Failed map-join attempt costs ~400 s before the backup runs.
      EXPECT_EQ(j.fixed_overhead, 400 * kSecond);
    }
  }
  EXPECT_TRUE(found_backup);
}

TEST_F(HiveEngineTest, Q5MapJoinSucceedsForTinyDims) {
  // N ⋈ R hash is tiny: the supplier-side map join must NOT fall back.
  auto jobs = BuildHiveJobs(5, 16000, bench_.hive().catalog(),
                            bench_.hive().options());
  EXPECT_NE(jobs[0].name.find("_mapjoin"), std::string::npos);
  EXPECT_EQ(jobs[0].reduce.num_reducers, 0);  // map-only
}

TEST_F(HiveEngineTest, Q9RunsOutOfDiskOnlyAt16TB) {
  EXPECT_FALSE(bench_.RunHive(9, 4000).failed_out_of_disk);
  EXPECT_TRUE(bench_.RunHive(9, 16000).failed_out_of_disk);
  // And no other query fails at 16 TB.
  for (int q = 1; q <= 22; ++q) {
    if (q == 9) continue;
    EXPECT_FALSE(bench_.RunHive(q, 16000).failed_out_of_disk) << "Q" << q;
  }
}

TEST_F(HiveEngineTest, QueriesScaleSublinearlyAtSmallSf) {
  // §3.3.4.3: Hive has high constant overheads, so 4x data costs < 4x
  // time at the small end.
  for (int q : {1, 5, 22}) {
    auto t250 = SimTimeToSeconds(bench_.RunHive(q, 250).total);
    auto t1000 = SimTimeToSeconds(bench_.RunHive(q, 1000).total);
    EXPECT_LT(t1000 / t250, 4.0) << "Q" << q;
    EXPECT_GT(t1000, t250) << "Q" << q;
  }
}

TEST_F(HiveEngineTest, MapSideAggregationAblation) {
  HiveOptions no_agg;
  no_agg.map_side_aggregation = false;
  tpch::DssOptions opt;
  opt.hive = no_agg;
  tpch::DssBenchmark slower(opt);
  // Q1 shuffles its full map output without map-side aggregation.
  EXPECT_GT(slower.RunHive(1, 1000).total, bench_.RunHive(1, 1000).total);
}

TEST_F(HiveEngineTest, MapJoinAblationRemovesFailurePenalty) {
  HiveOptions no_mj;
  no_mj.map_join = false;
  tpch::DssOptions opt;
  opt.hive = no_mj;
  tpch::DssBenchmark without(opt);
  auto jobs = BuildHiveJobs(22, 250, without.hive().catalog(),
                            without.hive().options());
  for (const auto& j : jobs) {
    EXPECT_EQ(j.fixed_overhead, 0) << j.name;
  }
}

TEST_F(HiveEngineTest, LoadTimeScalesWithSf) {
  SimTime t250 = bench_.HiveLoadTime(250);
  SimTime t1000 = bench_.HiveLoadTime(1000);
  EXPECT_NEAR(static_cast<double>(t1000) / t250, 4.0, 0.4);
  // Paper's Table 2 magnitude: 38 min at SF 250 (model within 2x).
  EXPECT_GT(SimTimeToSeconds(t250) / 60, 38.0 / 2);
  EXPECT_LT(SimTimeToSeconds(t250) / 60, 38.0 * 2);
}

}  // namespace
}  // namespace elephant::hive
