// Deliberately mis-annotated TU: every access below violates the lock
// discipline its annotations declare, so a clang build with
// -Werror=thread-safety MUST refuse to compile it. Registered with
// WILL_FAIL TRUE in tests/CMakeLists.txt — if this file ever compiles,
// the thread-safety gate is dead (wrong flags, wrong compiler, or the
// annotation macros expanded to nothing) and ctest fails loudly.
//
// See thread_safety_positive.cc for the clean mirror image. Never
// linked; syntax-checked only when ELEPHANT_THREAD_SAFETY=ON under
// clang.

#include <cstdint>

#include "common/thread_annotations.h"

namespace elephant {
namespace {

class Broken {
 public:
  // Violation 1: writes a guarded field without taking the lock.
  void UnlockedWrite() { value_ = 1; }

  // Violation 2: reads a guarded field without the lock.
  int64_t UnlockedRead() const { return value_; }

  // Violation 3: calls a REQUIRES(mu_) helper without holding mu_.
  void MissingRequires() { AddLocked(1); }

  // Violation 4: returns while still holding the lock it acquired.
  void LeakedLock() {
    mu_.Lock();
    value_ = 2;
  }

  void AddLocked(int64_t delta) ELEPHANT_REQUIRES(mu_) { value_ += delta; }

 private:
  mutable Mutex mu_;
  int64_t value_ ELEPHANT_GUARDED_BY(mu_) = 0;
};

void Drive() {
  Broken b;
  b.UnlockedWrite();
  (void)b.UnlockedRead(); // elephant-lint: allow(discarded-status)
  b.MissingRequires();
  b.LeakedLock();
}

}  // namespace
}  // namespace elephant

int main() {
  elephant::Drive();
  return 0;
}
