// Events/sec microbenchmark for the discrete-event simulation core —
// the substrate every modeled number in BENCH_tpch.json and
// BENCH_ycsb.json sits on. Three scenarios exercise the event-loop hot
// paths in isolation:
//
//   storm    — ScheduleCall/fire storm: plain callbacks at scattered
//              virtual times, drained in one Run() (heap push/pop +
//              callback dispatch cost).
//   pingpong — coroutine ping-pong: long-lived coroutines bouncing on
//              Delay() (ScheduleResume + resume dispatch cost).
//   opchurn  — per-operation churn: short-lived coroutines that
//              acquire a contended Server and join through a
//              per-operation latch, the sqlkv/mongod op shape (frame
//              allocation + latch lifecycle + resource-queue cost).
//
// Each scenario reports virtual events processed per wall second and
// appends a cell to BENCH_sim.json (same envelope as the other bench
// JSONs) so scripts/bench_diff.py tracks the speedup in-repo.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_json.h"
#include "common/string_util.h"
#include "common/units.h"
#include "sim/resources.h"
#include "sim/simulation.h"

using namespace elephant;

namespace {

double ElapsedMs(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - since)
      .count();
}

struct Cell {
  const char* scenario;
  uint64_t events = 0;
  double wall_ms = 0;
  double events_per_sec = 0;
};

// --- storm: N plain callbacks at scattered times, one drain ---------

Cell RunStorm(int64_t n) {
  sim::Simulation sim;
  int64_t fired = 0;
  auto t0 = std::chrono::steady_clock::now();
  for (int64_t i = 0; i < n; ++i) {
    sim.ScheduleCall((i * 7919) % 100000, [&fired] { fired++; });
  }
  sim.Run();
  Cell cell{"storm"};
  cell.wall_ms = ElapsedMs(t0);
  cell.events = sim.events_processed();
  if (fired != n) {
    fprintf(stderr, "storm: fired %lld of %lld\n", (long long)fired,
            (long long)n);
    exit(1);
  }
  return cell;
}

// --- pingpong: K coroutines x M delays ------------------------------

sim::Task Bouncer(sim::Simulation* sim, int64_t rounds, SimTime stride,
                  int64_t* done) {
  for (int64_t i = 0; i < rounds; ++i) {
    co_await sim->Delay(stride);
  }
  (*done)++;
}

Cell RunPingPong(int64_t coroutines, int64_t rounds) {
  sim::Simulation sim;
  int64_t done = 0;
  auto t0 = std::chrono::steady_clock::now();
  for (int64_t c = 0; c < coroutines; ++c) {
    Bouncer(&sim, rounds, 1 + (c % 7), &done);
  }
  sim.Run();
  Cell cell{"pingpong"};
  cell.wall_ms = ElapsedMs(t0);
  cell.events = sim.events_processed();
  if (done != coroutines) {
    fprintf(stderr, "pingpong: joined %lld of %lld\n", (long long)done,
            (long long)coroutines);
    exit(1);
  }
  return cell;
}

// --- opchurn: short-lived ops through a Server + per-op latch -------

sim::Task ServiceLeg(sim::Simulation* sim, sim::Server* server,
                     sim::Latch* done) {
  (void)sim;
  co_await server->Acquire(3);
  done->CountDown();
}

sim::Task OneOp(sim::Simulation* sim, sim::Server* server, int64_t* completed) {
  sim::PooledLatch done(&sim->latch_pool(), 1);
  ServiceLeg(sim, server, done.get());
  co_await done->Wait();
  (*completed)++;
}

sim::Task OpIssuer(sim::Simulation* sim, sim::Server* server, int64_t ops,
                   int64_t* completed) {
  for (int64_t i = 0; i < ops; ++i) {
    co_await sim->Delay(2);
    OneOp(sim, server, completed);
  }
}

Cell RunOpChurn(int64_t issuers, int64_t ops_per_issuer) {
  sim::Simulation sim;
  sim::Server server(&sim, 4, "dev");
  int64_t completed = 0;
  auto t0 = std::chrono::steady_clock::now();
  for (int64_t c = 0; c < issuers; ++c) {
    OpIssuer(&sim, &server, ops_per_issuer, &completed);
  }
  sim.Run();
  sim.CheckQuiescent();
  Cell cell{"opchurn"};
  cell.wall_ms = ElapsedMs(t0);
  cell.events = sim.events_processed();
  if (completed != issuers * ops_per_issuer) {
    fprintf(stderr, "opchurn: completed %lld of %lld\n", (long long)completed,
            (long long)(issuers * ops_per_issuer));
    exit(1);
  }
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  bool small = false;
  int repeats = 3;
  std::string out_path = "BENCH_sim.json";
  for (int i = 1; i < argc; ++i) {
    if (strcmp(argv[i], "--small") == 0) {
      small = true;
    } else if (strncmp(argv[i], "--repeats=", 10) == 0) {
      repeats = std::max(1, atoi(argv[i] + 10));
    } else if (strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else {
      fprintf(stderr, "usage: %s [--small] [--repeats=N] [--out=PATH]\n",
              argv[0]);
      return 2;
    }
  }
  auto harness_start = std::chrono::steady_clock::now();
  // Sizes chosen so each scenario drains >1M events at full scale; the
  // --small preset (CI) keeps the whole binary under a few seconds.
  int64_t scale = small ? 1 : 8;
  if (small) repeats = std::min(repeats, 2);

  printf("DES core events/sec (%s preset, best of %d):\n\n",
         small ? "small" : "full", repeats);
  printf("%-10s | %12s | %10s | %14s\n", "scenario", "events", "wall ms",
         "events/sec");
  printf("-----------+--------------+------------+---------------\n");

  std::vector<Cell> cells;
  auto run = [&](auto&& fn) {
    Cell best{};
    for (int r = 0; r < repeats; ++r) {
      Cell c = fn();
      c.events_per_sec = 1000.0 * static_cast<double>(c.events) / c.wall_ms;
      if (r == 0 || c.events_per_sec > best.events_per_sec) best = c;
    }
    printf("%-10s | %12llu | %10.1f | %14.0f\n", best.scenario,
           (unsigned long long)best.events, best.wall_ms,
           best.events_per_sec);
    cells.push_back(best);
  };
  run([&] { return RunStorm(scale * 250000); });
  run([&] { return RunPingPong(/*coroutines=*/64, scale * 2500); });
  run([&] { return RunOpChurn(/*issuers=*/256, scale * 125); });

  std::vector<std::string> json_cells;
  json_cells.reserve(cells.size());
  for (const Cell& c : cells) {
    json_cells.push_back(StrFormat(
        "{\"scenario\": \"%s\", \"events\": %llu, \"wall_ms\": %.1f, "
        "\"events_per_sec\": %.0f}",
        c.scenario, (unsigned long long)c.events, c.wall_ms,
        c.events_per_sec));
  }
  bench::WriteBenchJson(out_path, "sim_core", /*threads=*/1,
                        ElapsedMs(harness_start), json_cells);
  return 0;
}
