// Regenerates Figure 2 of the paper: workload C (100% reads), read
// latency vs throughput for Mongo-AS, Mongo-CS and SQL-CS.
//
// Paper anchors: SQL-CS peaks at 125,457 ops/s (6.4 ms reads); Mongo-AS
// and Mongo-CS peak at 68,533 and 60,907 ops/s (11.8 / 13.2 ms). All
// three are disk-bound at their peaks; MongoDB reads ~32 KB per request
// against SQL Server's 8 KB, wasting disk bandwidth.

#include "ycsb_bench_util.h"

using namespace elephant;
using namespace elephant::ycsb;

int main() {
  RunFigure("Figure 2", WorkloadSpec::C(),
            {5000, 10000, 20000, 40000, 80000, 160000},
            {OpType::kRead},
            "paper peaks: SQL-CS 125K, Mongo-AS 68.5K, Mongo-CS 60.9K");
  return 0;
}
