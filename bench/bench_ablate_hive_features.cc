// Ablation: the Hive features the paper enables in §3.2.1 (map-side
// aggregation and map joins). Shows what each is worth on the queries
// that exercise it.

#include <cstdio>

#include "tpch/dss_benchmark.h"

using namespace elephant;

namespace {

double Seconds(tpch::DssBenchmark& bench, int q, double sf) {
  return SimTimeToSeconds(bench.RunHive(q, sf).total);
}

}  // namespace

int main() {
  const double kSf = 1000;
  tpch::DssBenchmark tuned;  // paper configuration

  tpch::DssOptions no_agg_opt;
  no_agg_opt.hive.map_side_aggregation = false;
  tpch::DssBenchmark no_agg(no_agg_opt);

  tpch::DssOptions no_mj_opt;
  no_mj_opt.hive.map_join = false;
  tpch::DssBenchmark no_mj(no_mj_opt);

  printf("Hive feature ablations at SF %.0f (seconds)\n\n", kSf);
  printf("%-6s | %-10s | %-18s | %-14s\n", "Query", "tuned",
         "no map-side agg", "no map join");
  printf("-------+------------+--------------------+---------------\n");
  for (int q : {1, 5, 6, 15, 17, 18, 22}) {
    printf("Q%-5d | %10.0f | %18.0f | %14.0f\n", q, Seconds(tuned, q, kSf),
           Seconds(no_agg, q, kSf), Seconds(no_mj, q, kSf));
  }
  printf("\nMap-side aggregation shrinks the shuffled volume of the\n"
         "aggregate-heavy queries; disabling map joins removes Q22's\n"
         "400 s heap-failure penalty but pays a full common join for\n"
         "every small-dimension join.\n");
  return 0;
}
