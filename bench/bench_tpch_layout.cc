// Regenerates Table 1 of the paper: the data layout of the TPC-H tables
// in Hive (partitions + buckets) and PDW (hash distribution /
// replication).

#include <cstdio>

#include "hive/catalog.h"
#include "pdw/catalog.h"
#include "tpch/schema.h"

using namespace elephant;

int main() {
  hive::HiveCatalog hcat;
  pdw::PdwCatalog pcat;
  printf("Table 1: data layout in Hive and PDW\n\n");
  printf("%-10s | %-28s | %-28s | %-14s | %-11s\n", "Table",
         "Hive partition column", "Hive buckets",
         "PDW distribution", "Replicated");
  printf("-----------+------------------------------+--------------------"
         "----------+----------------+------------\n");
  for (int t = 0; t < tpch::kNumTables; ++t) {
    auto id = static_cast<tpch::TableId>(t);
    const auto& h = hcat.layout(id);
    const auto& p = pcat.layout(id);
    char buckets[64];
    if (h.bucket_column.empty()) {
      snprintf(buckets, sizeof(buckets), "--");
    } else {
      snprintf(buckets, sizeof(buckets), "%d on %s (%d files)",
               h.num_buckets, h.bucket_column.c_str(), h.total_files());
    }
    printf("%-10s | %-28s | %-28s | %-14s | %-11s\n", tpch::TableName(id),
           h.partition_column.empty() ? "--" : h.partition_column.c_str(),
           buckets,
           p.replicated ? "--" : p.distribution_column.c_str(),
           p.replicated ? "Yes" : "No");
  }
  printf("\nSparse orderkeys leave %d of %d lineitem/orders bucket files "
         "non-empty (8 of every 32).\n",
         hcat.layout(tpch::TableId::kLineitem).nonempty_files,
         hcat.layout(tpch::TableId::kLineitem).total_files());
  return 0;
}
