// Ablation: PDW with its cost-based optimizer disabled (join order as
// written, both join inputs repartitioned, no small-table replication —
// i.e. Hive-style planning on PDW's runtime). Isolates how much of the
// paper's PDW-over-Hive gap comes from the optimizer versus the
// runtime.

#include <cstdio>

#include "tpch/dss_benchmark.h"
#include "tpch/queries.h"

using namespace elephant;

int main() {
  const double kSf = 1000;
  tpch::DssBenchmark cbo;  // cost-based (paper configuration)

  tpch::DssOptions naive_opt;
  naive_opt.pdw.cost_based_optimizer = false;
  tpch::DssBenchmark naive(naive_opt);

  printf("PDW cost-based-optimizer ablation at SF %.0f (seconds)\n\n",
         kSf);
  printf("%-6s | %-12s | %-16s | %-8s | %-10s\n", "Query", "cost-based",
         "script-order", "slowdown", "Hive");
  printf("-------+--------------+------------------+----------+-----------"
         "\n");
  double sum_cbo = 0, sum_naive = 0;
  for (int q = 1; q <= tpch::kNumQueries; ++q) {
    double t_cbo = SimTimeToSeconds(cbo.RunPdw(q, kSf).total);
    double t_naive = SimTimeToSeconds(naive.RunPdw(q, kSf).total);
    double t_hive = SimTimeToSeconds(cbo.RunHive(q, kSf).total);
    sum_cbo += t_cbo;
    sum_naive += t_naive;
    printf("Q%-5d | %12.0f | %16.0f | %7.1fx | %10.0f\n", q, t_cbo,
           t_naive, t_naive / t_cbo, t_hive);
  }
  printf("\nTotals: cost-based %.0f s, script-order %.0f s (%.1fx). The\n"
         "paper attributes much of Hive's gap to exactly these missing\n"
         "optimizations (join ordering, replication, co-located joins).\n",
         sum_cbo, sum_naive, sum_naive / sum_cbo);
  return 0;
}
