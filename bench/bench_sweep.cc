// Saturation sweep: drives each OLTP system (SQL-CS, Mongo-CS,
// Mongo-AS) from idle to saturation with an open-loop Poisson arrival
// process and writes the latency/utilization curve plus the detected
// knee to BENCH_sweep.json. The model numbers and fingerprints are
// thread-count invariant and replayable via ELEPHANT_SWEEP_SEED; only
// the harness wall-clock changes with --threads.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_json.h"
#include "common/string_util.h"
#include "common/task_pool.h"
#include "ycsb_bench_util.h"
#include "ycsb/sweep.h"

using namespace elephant;
using namespace elephant::ycsb;

namespace {

double ElapsedMs(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - since)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  int threads = DefaultThreadCount();
  std::string out_path = "BENCH_sweep.json";
  bool small = false;
  for (int i = 1; i < argc; ++i) {
    if (strncmp(argv[i], "--threads=", 10) == 0) {
      threads = std::max(1, atoi(argv[i] + 10));
    } else if (strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else if (strcmp(argv[i], "--small") == 0) {
      small = true;
    } else {
      fprintf(stderr, "usage: %s [--threads=N] [--out=PATH] [--small]\n",
              argv[0]);
      return 2;
    }
  }
  auto harness_start = std::chrono::steady_clock::now();

  SweepOptions options = small ? SweepOptions::Small() : SweepOptions();
  if (!small) {
    // Full mode reuses the figure benches' trimmed windows; --small is
    // the CI preset (see SweepOptions::Small).
    DriverOptions trimmed = BenchOptions();
    trimmed.seed = options.driver.seed;
    options.driver = trimmed;
  }
  options.driver.seed = SweepSeedFromEnv(options.driver.seed);
  options.parallelism = threads;

  printf("Saturation sweep: workload %s, %zu offered rates, seed 0x%llx, "
         "%d thread(s)\n\n",
         options.workload.name.c_str(), options.offered_rates.size(),
         static_cast<unsigned long long>(options.driver.seed), threads);

  std::vector<std::string> json_cells;
  for (SystemKind kind :
       {SystemKind::kSqlCs, SystemKind::kMongoCs, SystemKind::kMongoAs}) {
    auto t0 = std::chrono::steady_clock::now();
    SweepCurve curve = RunSaturationSweep(kind, options);
    double wall_ms = ElapsedMs(t0);

    printf("-- %s --\n", curve.system.c_str());
    printf("%10s %10s %9s %9s %9s %9s %6s %5s %5s %5s\n", "offered",
           "achieved", "p50_ms", "p99_ms", "p999_ms", "queue_ms", "shed",
           "cpu", "disk", "lock");
    for (size_t i = 0; i < curve.steps.size(); ++i) {
      const SweepStepResult& s = curve.steps[i];
      printf("%10.0f %10.0f %9.2f %9.2f %9.2f %9.1f %6lld %5.2f %5.2f "
             "%5.2f%s\n",
             s.offered_rate, s.achieved_rate, SimTimeToMillis(s.p50_us),
             SimTimeToMillis(s.p99_us), SimTimeToMillis(s.p999_us),
             s.queue_wait_ms, static_cast<long long>(s.shed), s.util.cpu,
             s.util.disk, s.util.lock_wait,
             static_cast<int>(i) == curve.knee_step ? "   <-- knee" : "");
      json_cells.push_back(StrFormat(
          "{\"system\": \"%s\", \"workload\": \"%s\", \"step\": %d, "
          "\"offered_rate\": %.0f, \"achieved_ops_per_sec\": %.1f, "
          "\"p50_ms\": %.3f, \"p95_ms\": %.3f, \"p99_ms\": %.3f, "
          "\"p999_ms\": %.3f, \"util_cpu\": %.4f, \"util_disk\": %.4f, "
          "\"util_log_disk\": %.4f, \"util_nic_tx\": %.4f, "
          "\"util_nic_rx\": %.4f, \"lock_wait\": %.4f, \"shed\": %lld, "
          "\"peak_inflight\": %lld, \"queue_wait_ms\": %.1f, "
          "\"fingerprint\": \"%016llx\", \"wall_ms\": %.1f}",
          curve.system.c_str(), options.workload.name.c_str(),
          static_cast<int>(i), s.offered_rate, s.achieved_rate,
          SimTimeToMillis(s.p50_us), SimTimeToMillis(s.p95_us),
          SimTimeToMillis(s.p99_us), SimTimeToMillis(s.p999_us), s.util.cpu,
          s.util.disk, s.util.log_disk, s.util.nic_tx, s.util.nic_rx,
          s.util.lock_wait, static_cast<long long>(s.shed),
          static_cast<long long>(s.peak_inflight), s.queue_wait_ms,
          static_cast<unsigned long long>(s.Fingerprint()), wall_ms));
    }
    printf("knee: %s\n\n",
           curve.knee_step < 0
               ? "not reached"
               : StrFormat("step %d (offered %.0f ops/sec, p99 %.2f ms)",
                           curve.knee_step, curve.knee_offered_rate,
                           curve.p99_at_knee_ms)
                     .c_str());
    json_cells.push_back(StrFormat(
        "{\"system\": \"%s\", \"workload\": \"%s\", \"cell\": \"knee\", "
        "\"knee_step\": %d, \"knee_offered_rate\": %.0f, "
        "\"p99_at_knee_ms\": %.3f, \"idle_p99_ms\": %.3f, "
        "\"fingerprint\": \"%016llx\", \"wall_ms\": %.1f}",
        curve.system.c_str(), options.workload.name.c_str(), curve.knee_step,
        curve.knee_offered_rate, curve.p99_at_knee_ms, curve.idle_p99_ms,
        static_cast<unsigned long long>(curve.Fingerprint()), wall_ms));
  }

  bench::WriteBenchJson(out_path, "sweep", threads, ElapsedMs(harness_start),
                        json_cells);
  return 0;
}
