// Regenerates Table 3 of the paper: per-query Hive and PDW times at the
// four TPC-H scale factors, PDW-over-Hive speedups, per-4x scaling
// factors, and the AM/GM summary rows. Prints the model's numbers next
// to the paper's published values.

#include <cstdio>

#include "common/units.h"
#include "tpch/dss_benchmark.h"
#include "tpch/paper_reference.h"
#include "tpch/queries.h"

using namespace elephant;

int main() {
  tpch::DssBenchmark bench;
  std::vector<tpch::DssQueryRow> rows =
      bench.RunAll(tpch::kPaperScaleFactors);

  printf("Table 3: TPC-H on Hive and PDW at SF 250 / 1000 / 4000 / 16000\n");
  printf("(model seconds, with the paper's measurements in parentheses; "
         "'--' = out of disk)\n\n");
  printf("%-4s | %-34s | %-34s | %-23s | %-11s | %-11s\n", "Q",
         "HIVE sec (paper)", "PDW sec (paper)", "Speedup (paper)",
         "HIVE scaling", "PDW scaling");
  printf("-----+------------------------------------+----------------------"
         "--------------+-------------------------+-------------+--------"
         "-----\n");

  for (const auto& row : rows) {
    int q = row.query;
    char hive[160] = "", pdw[160] = "", speed[128] = "", hs[64] = "",
         ps[64] = "";
    char* hp = hive;
    char* pp = pdw;
    char* sp = speed;
    for (size_t i = 0; i < tpch::kPaperScaleFactors.size(); ++i) {
      double paper_h = tpch::PaperReference::kHiveSeconds[q - 1][i];
      double paper_p = tpch::PaperReference::kPdwSeconds[q - 1][i];
      if (row.hive_failed[i]) {
        hp += snprintf(hp, 24, "--(--) ");
      } else {
        hp += snprintf(hp, 24, "%.0f(%.0f) ", row.hive_seconds[i], paper_h);
      }
      pp += snprintf(pp, 24, "%.0f(%.0f) ", row.pdw_seconds[i], paper_p);
      double paper_speed =
          paper_h > 0 && paper_p > 0 ? paper_h / paper_p : 0;
      if (row.hive_failed[i]) {
        sp += snprintf(sp, 24, "--  ");
      } else {
        sp += snprintf(sp, 24, "%.1f(%.1f) ", row.Speedup(i), paper_speed);
      }
    }
    // Per-4x scaling factors across adjacent SFs.
    char* hsp = hs;
    char* psp = ps;
    for (size_t i = 1; i < tpch::kPaperScaleFactors.size(); ++i) {
      if (row.hive_failed[i] || row.hive_failed[i - 1]) {
        hsp += snprintf(hsp, 12, "--  ");
      } else {
        hsp += snprintf(hsp, 12, "%.1f ",
                        row.hive_seconds[i] / row.hive_seconds[i - 1]);
      }
      psp += snprintf(psp, 12, "%.1f ",
                      row.pdw_seconds[i] / row.pdw_seconds[i - 1]);
    }
    printf("Q%-3d | %-34s | %-34s | %-23s | %-11s | %-11s\n", q, hive, pdw,
           speed, hs, ps);
  }

  tpch::DssSummary hive_sum = tpch::DssBenchmark::SummarizeHive(rows);
  tpch::DssSummary pdw_sum = tpch::DssBenchmark::SummarizePdw(rows);
  printf("\nSummary rows (model):\n");
  auto print_summary = [&](const char* name, const std::vector<double>& h,
                           const std::vector<double>& p) {
    printf("%-5s HIVE:", name);
    for (double v : h) printf(" %8.0f", v);
    printf("   PDW:");
    for (double v : p) printf(" %8.0f", v);
    printf("\n");
  };
  print_summary("AM", hive_sum.am, pdw_sum.am);
  print_summary("GM", hive_sum.gm, pdw_sum.gm);
  print_summary("AM-9", hive_sum.am9, pdw_sum.am9);
  print_summary("GM-9", hive_sum.gm9, pdw_sum.gm9);

  printf("\nAverage per-query speedup of PDW over Hive:");
  for (size_t i = 0; i < tpch::kPaperScaleFactors.size(); ++i) {
    double sum = 0;
    int n = 0;
    for (const auto& row : rows) {
      if (!row.hive_failed[i]) {
        sum += row.Speedup(i);
        n++;
      }
    }
    printf(" SF%.0f=%.1fx", tpch::kPaperScaleFactors[i],
           n ? sum / n : 0.0);
  }
  printf("  (paper: 35.3x / 13.6x / 10.4x / 9.0x)\n");
  return 0;
}
