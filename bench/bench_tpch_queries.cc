// Regenerates Table 3 of the paper: per-query Hive and PDW times at the
// four TPC-H scale factors, PDW-over-Hive speedups, per-4x scaling
// factors, and the AM/GM summary rows. Prints the model's numbers next
// to the paper's published values.
//
// Two lanes share the harness:
//  - model lane: the 22 x 4 simulated (query, SF) cells, each run on
//    its own DssBenchmark instance so cells are independent and can
//    execute concurrently; the model seconds are thread-count
//    invariant.
//  - exec lane: the 22 reference queries actually executed by the exec
//    operator library over a dbgen database at a mini scale factor,
//    with a canonical-order checksum per query so parallel runs can be
//    byte-compared against --threads=1.
//
// Flags: --threads=N (default ELEPHANT_THREADS, else 1), --sf=F (exec
// lane scale factor, default 0.02), --budget=BYTES (memory budget for
// the exec lane, e.g. 256MB; default ELEPHANT_MEM_BUDGET), --out=PATH
// (default BENCH_tpch.json). The JSON carries per-cell model seconds,
// exec wall-clock ms, checksums, peak RSS, the thread count, and the
// git sha.
//
// With a nonzero budget the exec lane runs budget-shaped: dbgen
// streams the base tables into compressed segment-cache chunks
// (frozen), query cells run serially, and thawed columns are released
// between queries so the recorded peak RSS reflects one query's
// working set over the encoded base data, not 22 concurrent thaws.

#include <algorithm>
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_json.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "common/task_pool.h"
#include "common/units.h"
#include "exec/frozen.h"
#include "exec/operators.h"
#include "exec/segcache.h"
#include "tpch/dss_benchmark.h"
#include "tpch/paper_reference.h"
#include "tpch/queries.h"

using namespace elephant;

namespace {

double ElapsedMs(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - since)
      .count();
}

/// Order-insensitive, bit-exact digest of a query answer: every row is
/// serialized (doubles by %.17g so equal bit patterns produce equal
/// text), row strings are sorted (canonical order), and the
/// concatenation is FNV-hashed. Identical answers => identical digest,
/// regardless of row order.
uint64_t CanonicalChecksum(const exec::Table& t) {
  std::vector<std::string> lines;
  lines.reserve(t.num_rows());
  for (size_t r = 0; r < t.num_rows(); ++r) {
    std::string line;
    for (int c = 0; c < t.num_cols(); ++c) {
      // ValueAt reads straight from the column vectors — no Row-cache
      // materialization of the whole answer table.
      exec::Value v = t.ValueAt(r, c);
      if (const auto* i = std::get_if<int64_t>(&v)) {
        line += StrFormat("i%lld|", static_cast<long long>(*i));
      } else if (const auto* d = std::get_if<double>(&v)) {
        line += StrFormat("d%.17g|", *d);
      } else {
        line += "s" + std::get<std::string>(v) + "|";
      }
    }
    lines.push_back(std::move(line));
  }
  std::sort(lines.begin(), lines.end());
  uint64_t h = 0xCBF29CE484222325ULL;
  for (const std::string& line : lines) {
    h ^= Fnv1a64(line.data(), line.size());
    h *= 0x100000001B3ULL;
  }
  return h;
}

struct ModelCell {
  double hive_seconds = 0;
  double pdw_seconds = 0;
  bool hive_failed = false;
};

struct ExecCell {
  double wall_ms = 0;
  size_t rows = 0;
  uint64_t checksum = 0;
  long long peak_rss = 0;
};

}  // namespace

int main(int argc, char** argv) {
  int threads = DefaultThreadCount();
  double exec_sf = 0.02;
  std::vector<int> query_filter;
  std::string out_path = "BENCH_tpch.json";
  for (int i = 1; i < argc; ++i) {
    if (strncmp(argv[i], "--threads=", 10) == 0) {
      threads = std::max(1, atoi(argv[i] + 10));
    } else if (strncmp(argv[i], "--sf=", 5) == 0) {
      exec_sf = atof(argv[i] + 5);
    } else if (strncmp(argv[i], "--budget=", 9) == 0) {
      Result<size_t> parsed = exec::ParseByteSize(argv[i] + 9);
      if (!parsed.ok()) {
        fprintf(stderr, "bad --budget: %s\n", argv[i] + 9);
        return 2;
      }
      exec::SetExecMemoryBudget(parsed.value());
    } else if (strncmp(argv[i], "--queries=", 10) == 0) {
      // Comma-separated exec-lane query filter (e.g. --queries=1,6,14);
      // the model lane always runs all 22 (it is cheap simulation).
      for (const char* p = argv[i] + 10; *p != '\0';) {
        char* end = nullptr;
        long q = strtol(p, &end, 10);
        if (end == p || q < 1 || q > tpch::kNumQueries) {
          fprintf(stderr, "bad --queries entry: %s\n", p);
          return 2;
        }
        query_filter.push_back(static_cast<int>(q));
        p = *end == ',' ? end + 1 : end;
      }
    } else if (strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else {
      fprintf(stderr,
              "usage: %s [--threads=N] [--sf=F] [--budget=BYTES] "
              "[--queries=1,6,14] [--out=PATH]\n",
              argv[0]);
      return 2;
    }
  }
  auto query_selected = [&query_filter](int q) {
    return query_filter.empty() ||
           std::find(query_filter.begin(), query_filter.end(), q) !=
               query_filter.end();
  };
  exec::SetExecThreads(threads);
  const size_t budget = exec::ExecMemoryBudget();
  auto harness_start = std::chrono::steady_clock::now();

  // --- model lane: independent (query, SF) cells, one DssBenchmark
  // each (the simulation has no shared state across instances) ---
  const std::vector<double>& sfs = tpch::kPaperScaleFactors;
  const size_t num_cells = tpch::kNumQueries * sfs.size();
  std::vector<ModelCell> cells(num_cells);
  auto run_model_cell = [&](size_t idx) {
    int q = static_cast<int>(idx / sfs.size()) + 1;
    double sf = sfs[idx % sfs.size()];
    tpch::DssBenchmark bench;
    hive::HiveQueryResult h = bench.RunHive(q, sf);
    pdw::PdwQueryResult p = bench.RunPdw(q, sf);
    cells[idx] = {SimTimeToSeconds(h.total), SimTimeToSeconds(p.total),
                  h.failed_out_of_disk};
  };
  if (threads > 1) {
    TaskPool::Global(threads).ParallelFor(
        0, num_cells, 1,
        [&](size_t lo, size_t hi) {
          for (size_t i = lo; i < hi; ++i) run_model_cell(i);
        },
        threads);
  } else {
    for (size_t i = 0; i < num_cells; ++i) run_model_cell(i);
  }
  std::vector<tpch::DssQueryRow> rows;
  for (int q = 1; q <= tpch::kNumQueries; ++q) {
    tpch::DssQueryRow row;
    row.query = q;
    for (size_t si = 0; si < sfs.size(); ++si) {
      const ModelCell& c = cells[(q - 1) * sfs.size() + si];
      row.hive_seconds.push_back(c.hive_seconds);
      row.pdw_seconds.push_back(c.pdw_seconds);
      row.hive_failed.push_back(c.hive_failed);
    }
    rows.push_back(std::move(row));
  }

  printf("Table 3: TPC-H on Hive and PDW at SF 250 / 1000 / 4000 / 16000\n");
  printf("(model seconds, with the paper's measurements in parentheses; "
         "'--' = out of disk)\n\n");
  printf("%-4s | %-34s | %-34s | %-23s | %-11s | %-11s\n", "Q",
         "HIVE sec (paper)", "PDW sec (paper)", "Speedup (paper)",
         "HIVE scaling", "PDW scaling");
  printf("-----+------------------------------------+----------------------"
         "--------------+-------------------------+-------------+--------"
         "-----\n");

  for (const auto& row : rows) {
    int q = row.query;
    char hive[160] = "", pdw[160] = "", speed[128] = "", hs[64] = "",
         ps[64] = "";
    char* hp = hive;
    char* pp = pdw;
    char* sp = speed;
    for (size_t i = 0; i < tpch::kPaperScaleFactors.size(); ++i) {
      double paper_h = tpch::PaperReference::kHiveSeconds[q - 1][i];
      double paper_p = tpch::PaperReference::kPdwSeconds[q - 1][i];
      if (row.hive_failed[i]) {
        hp += snprintf(hp, 24, "--(--) ");
      } else {
        hp += snprintf(hp, 24, "%.0f(%.0f) ", row.hive_seconds[i], paper_h);
      }
      pp += snprintf(pp, 24, "%.0f(%.0f) ", row.pdw_seconds[i], paper_p);
      double paper_speed =
          paper_h > 0 && paper_p > 0 ? paper_h / paper_p : 0;
      if (row.hive_failed[i]) {
        sp += snprintf(sp, 24, "--  ");
      } else {
        sp += snprintf(sp, 24, "%.1f(%.1f) ", row.Speedup(i), paper_speed);
      }
    }
    // Per-4x scaling factors across adjacent SFs.
    char* hsp = hs;
    char* psp = ps;
    for (size_t i = 1; i < tpch::kPaperScaleFactors.size(); ++i) {
      if (row.hive_failed[i] || row.hive_failed[i - 1]) {
        hsp += snprintf(hsp, 12, "--  ");
      } else {
        hsp += snprintf(hsp, 12, "%.1f ",
                        row.hive_seconds[i] / row.hive_seconds[i - 1]);
      }
      psp += snprintf(psp, 12, "%.1f ",
                      row.pdw_seconds[i] / row.pdw_seconds[i - 1]);
    }
    printf("Q%-3d | %-34s | %-34s | %-23s | %-11s | %-11s\n", q, hive, pdw,
           speed, hs, ps);
  }

  tpch::DssSummary hive_sum = tpch::DssBenchmark::SummarizeHive(rows);
  tpch::DssSummary pdw_sum = tpch::DssBenchmark::SummarizePdw(rows);
  printf("\nSummary rows (model):\n");
  auto print_summary = [&](const char* name, const std::vector<double>& h,
                           const std::vector<double>& p) {
    printf("%-5s HIVE:", name);
    for (double v : h) printf(" %8.0f", v);
    printf("   PDW:");
    for (double v : p) printf(" %8.0f", v);
    printf("\n");
  };
  print_summary("AM", hive_sum.am, pdw_sum.am);
  print_summary("GM", hive_sum.gm, pdw_sum.gm);
  print_summary("AM-9", hive_sum.am9, pdw_sum.am9);
  print_summary("GM-9", hive_sum.gm9, pdw_sum.gm9);

  printf("\nAverage per-query speedup of PDW over Hive:");
  for (size_t i = 0; i < tpch::kPaperScaleFactors.size(); ++i) {
    double sum = 0;
    int n = 0;
    for (const auto& row : rows) {
      if (!row.hive_failed[i]) {
        sum += row.Speedup(i);
        n++;
      }
    }
    printf(" SF%.0f=%.1fx", tpch::kPaperScaleFactors[i],
           n ? sum / n : 0.0);
  }
  printf("  (paper: 35.3x / 13.6x / 10.4x / 9.0x)\n");

  // --- exec lane: the 22 reference queries actually executed over a
  // dbgen database at a mini SF; query cells run concurrently and each
  // query's operators additionally parallelize internally ---
  printf("\nExec lane: reference queries at SF %.3g, %d thread(s)",
         exec_sf, threads);
  if (budget != 0) {
    printf(", budget %.0f MB", static_cast<double>(budget) / (1 << 20));
  }
  printf("\n");
  auto gen_start = std::chrono::steady_clock::now();
  tpch::DbgenOptions dopt;
  dopt.threads = threads;
  tpch::TpchDatabase db = tpch::GenerateDatabase(exec_sf, dopt);
  double dbgen_ms = ElapsedMs(gen_start);
  printf("dbgen: %zu lineitem rows in %.0f ms%s\n", db.lineitem.num_rows(),
         dbgen_ms,
         db.lineitem.is_frozen() ? " (frozen: segment-backed)" : "");
  if (db.lineitem.is_frozen()) {
    size_t encoded = 0;
    for (const exec::Table* t :
         {&db.supplier, &db.part, &db.partsupp, &db.customer, &db.orders,
          &db.lineitem}) {
      encoded += t->frozen_data()->EncodedBytes();
    }
    printf("encoded base tables: %.1f MB\n",
           static_cast<double>(encoded) / (1 << 20));
  }
  auto release_residents = [&db]() {
    for (exec::Table* t :
         {&db.supplier, &db.part, &db.partsupp, &db.customer, &db.orders,
          &db.lineitem}) {
      t->ReleaseResident();
    }
  };

  std::vector<ExecCell> exec_cells(tpch::kNumQueries);
  auto run_exec_cell = [&](size_t idx) {
    int q = static_cast<int>(idx) + 1;
    if (!query_selected(q)) return;
    auto t0 = std::chrono::steady_clock::now();
    exec::Table answer = tpch::RunQuery(q, db);
    ExecCell& cell = exec_cells[idx];
    cell.wall_ms = ElapsedMs(t0);
    cell.rows = answer.num_rows();
    cell.checksum = CanonicalChecksum(answer);
    cell.peak_rss = bench::PeakRssBytes();
  };
  auto exec_start = std::chrono::steady_clock::now();
  // Budget-shaped runs go serial with residency released between
  // queries: peak RSS then measures one query at a time over the
  // encoded base tables (the operators still parallelize internally).
  if (threads > 1 && budget == 0) {
    TaskPool::Global(threads).ParallelFor(
        0, exec_cells.size(), 1,
        [&](size_t lo, size_t hi) {
          for (size_t i = lo; i < hi; ++i) run_exec_cell(i);
        },
        threads);
  } else {
    for (size_t i = 0; i < exec_cells.size(); ++i) {
      run_exec_cell(i);
      if (budget != 0) release_residents();
    }
  }
  double exec_ms = ElapsedMs(exec_start);
  for (int q = 1; q <= tpch::kNumQueries; ++q) {
    if (!query_selected(q)) continue;
    const ExecCell& c = exec_cells[q - 1];
    printf("Q%-3d %8.1f ms  %6zu rows  checksum %016llx\n", q, c.wall_ms,
           c.rows, static_cast<unsigned long long>(c.checksum));
  }
  printf("exec lane total: %.0f ms (dbgen %.0f ms + queries %.0f ms), "
         "peak RSS %.1f MB\n",
         dbgen_ms + exec_ms, dbgen_ms, exec_ms,
         static_cast<double>(bench::PeakRssBytes()) / (1 << 20));

  // --- machine-readable trajectory ---
  std::vector<std::string> json_cells;
  json_cells.reserve(num_cells + exec_cells.size());
  for (int q = 1; q <= tpch::kNumQueries; ++q) {
    for (size_t si = 0; si < sfs.size(); ++si) {
      const ModelCell& c = cells[(q - 1) * sfs.size() + si];
      json_cells.push_back(StrFormat(
          "{\"lane\": \"model\", \"query\": %d, \"sf\": %.0f, "
          "\"hive_seconds\": %.3f, \"pdw_seconds\": %.3f, "
          "\"hive_failed\": %s}",
          q, sfs[si], c.hive_seconds, c.pdw_seconds,
          c.hive_failed ? "true" : "false"));
    }
  }
  for (int q = 1; q <= tpch::kNumQueries; ++q) {
    if (!query_selected(q)) continue;
    const ExecCell& c = exec_cells[q - 1];
    json_cells.push_back(StrFormat(
        "{\"lane\": \"exec\", \"query\": %d, \"sf\": %g, "
        "\"wall_ms\": %.2f, \"rows\": %zu, \"checksum\": \"%016llx\", "
        "\"budget_bytes\": %zu, \"peak_rss_bytes\": %lld}",
        q, exec_sf, c.wall_ms, c.rows,
        static_cast<unsigned long long>(c.checksum), budget, c.peak_rss));
  }
  bench::WriteBenchJson(out_path, "tpch_queries", threads,
                        ElapsedMs(harness_start), json_cells);
  return 0;
}
