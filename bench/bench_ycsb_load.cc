// Regenerates the §3.4.2 load-time comparison: loading the YCSB dataset
// into Mongo-AS (with the paper's manual chunk pre-splitting), SQL-CS
// (every insert its own transaction — no bulk API), and Mongo-CS.
// Also runs the pre-split ablation: without it, the balancer migrates
// chunks while the load races against it.
//
// Paper: Mongo-AS 114 min, SQL-CS 146 min, Mongo-CS 45 min (640 M
// records). Model times are scaled to 640 M records for comparison.

#include <cstdio>
#include <memory>

#include "tpch/paper_reference.h"
#include "ycsb/driver.h"

using namespace elephant;
using namespace elephant::ycsb;

namespace {

double LoadMinutesAt640M(SystemKind kind, bool presplit,
                         const DriverOptions& opt) {
  OltpTestbed testbed;
  int64_t data_per_node = opt.record_count * opt.record_bytes /
                          OltpTestbed::kServerNodes;
  int64_t mem =
      static_cast<int64_t>(data_per_node / opt.data_to_memory_ratio);
  std::unique_ptr<DataServingSystem> system;
  switch (kind) {
    case SystemKind::kSqlCs: {
      sqlkv::SqlEngineOptions sql;
      sql.memory_bytes = mem;
      system = std::make_unique<SqlCsSystem>(&testbed, sql);
      break;
    }
    case SystemKind::kMongoCs: {
      docstore::MongodOptions m;
      m.memory_bytes = mem / 16;
      system = std::make_unique<MongoCsSystem>(&testbed, m);
      break;
    }
    case SystemKind::kMongoAs: {
      MongoAsSystem::Options m;
      m.mongod.memory_bytes = mem / 16;
      m.presplit_chunks = presplit;
      m.config.max_chunk_bytes = 256 * 1024;
      auto sys = std::make_unique<MongoAsSystem>(&testbed, m);
      if (presplit) {
        // Define the empty chunk boundaries up front (§3.4.2), sized so
        // no chunk outgrows the split threshold during the load.
        int chunks = static_cast<int>(opt.record_count * opt.record_bytes /
                                      m.config.max_chunk_bytes) *
                         4 +
                     128;
        sys->config().PreSplit(opt.record_count * 2, chunks);
      }
      system = std::move(sys);
      break;
    }
  }
  YcsbDriver driver(&testbed, system.get(), WorkloadSpec::C(), opt);
  SimTime t = driver.SimulateTimedLoad(/*loader_threads=*/128);
  double scale = 640e6 / static_cast<double>(opt.record_count);
  return SimTimeToSeconds(t) * scale / 60.0;
}

}  // namespace

int main() {
  DriverOptions opt;
  opt.record_count = 400000;  // timed loads are insert-bound; keep small

  printf("YCSB load times, scaled to the paper's 640 M records "
         "(model minutes, paper in parentheses):\n\n");
  double mongo_as = LoadMinutesAt640M(SystemKind::kMongoAs, true, opt);
  printf("  Mongo-AS (pre-split chunks): %6.0f  (%3.0f)\n", mongo_as,
         tpch::PaperReference::kMongoAsLoadMinutes);
  double sql = LoadMinutesAt640M(SystemKind::kSqlCs, true, opt);
  printf("  SQL-CS (per-row transactions): %4.0f  (%3.0f)\n", sql,
         tpch::PaperReference::kSqlCsLoadMinutes);
  double mongo_cs = LoadMinutesAt640M(SystemKind::kMongoCs, true, opt);
  printf("  Mongo-CS:                    %6.0f  (%3.0f)\n", mongo_cs,
         tpch::PaperReference::kMongoCsLoadMinutes);

  printf("\nAblation - Mongo-AS without pre-splitting (the balancer "
         "migrates chunks during the load):\n");
  double cold = LoadMinutesAt640M(SystemKind::kMongoAs, false, opt);
  printf("  Mongo-AS (cold balancer):    %6.0f  (%.1fx the pre-split "
         "load)\n",
         cold, cold / mongo_as);
  return 0;
}
