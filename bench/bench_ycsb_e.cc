// Regenerates Figure 6 of the paper: workload E (95% short scans / 5%
// appends), scan and append latency vs throughput.
//
// Paper anchors: Mongo-AS's range partitioning answers a short scan
// from (typically) one shard, so it reaches the highest throughput
// (6,337 ops/s) with the lowest scan latency (30.4 ms), while SQL-CS
// and Mongo-CS must query every hash shard per scan. The flip side:
// Mongo-AS appends all hit the last chunk and suffer (1,832 ms in the
// paper vs 2 ms for SQL-CS).

#include "ycsb_bench_util.h"

using namespace elephant;
using namespace elephant::ycsb;

int main() {
  DriverOptions opt = BenchOptions();
  opt.measure = 3 * kSecond;  // scans are event-heavy; keep runs short
  RunFigure("Figure 6", WorkloadSpec::E(),
            {250, 500, 1000, 2000, 4000, 8000},
            {OpType::kScan, OpType::kInsert},
            "paper: Mongo-AS wins scans (6.3K, 30 ms) but loses appends",
            opt);
  return 0;
}
