#ifndef ELEPHANT_BENCH_YCSB_BENCH_UTIL_H_
#define ELEPHANT_BENCH_YCSB_BENCH_UTIL_H_

// Shared printing helpers for the YCSB figure benches (Figures 2-6 of
// the paper): latency-vs-throughput curves for Mongo-AS, Mongo-CS and
// SQL-CS.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "ycsb/driver.h"

namespace elephant::ycsb {

inline DriverOptions BenchOptions() {
  DriverOptions opt;  // calibrated defaults (see DriverOptions docs)
  opt.warmup = 2 * kSecond;
  opt.measure = 4 * kSecond;
  return opt;
}

/// Runs the three systems across the target list and prints one table
/// per operation type of interest. When the ELEPHANT_CSV_DIR
/// environment variable is set, also writes
/// `<dir>/<figure>_<system>.csv` rows (target, achieved, per-op mean
/// latencies in ms) for plotting.
inline void RunFigure(const char* figure, const WorkloadSpec& workload,
                      const std::vector<int64_t>& targets,
                      const std::vector<OpType>& op_types,
                      const char* paper_note,
                      const DriverOptions& base = BenchOptions()) {
  printf("%s: YCSB workload %s (%s: %s)\n", figure, workload.name.c_str(),
         workload.description.c_str(), paper_note);
  printf("Latency vs throughput; '--' marks a crashed run "
         "(paper protocol: avg over trailing windows, +/- std error)\n\n");

  static const SystemKind kKinds[] = {SystemKind::kMongoAs,
                                      SystemKind::kMongoCs,
                                      SystemKind::kSqlCs};
  const char* csv_dir = getenv("ELEPHANT_CSV_DIR");
  for (SystemKind kind : kKinds) {
    FILE* csv = nullptr;
    if (csv_dir != nullptr) {
      std::string path = std::string(csv_dir) + "/" + figure + "_" +
                         SystemKindName(kind) + ".csv";
      for (char& c : path) {
        if (c == ' ') c = '_';
      }
      csv = fopen(path.c_str(), "w");
      if (csv != nullptr) {
        fprintf(csv, "target,achieved");
        for (OpType t : op_types) fprintf(csv, ",%s_ms", OpTypeName(t));
        fprintf(csv, "\n");
      }
    }
    printf("-- %s --\n", SystemKindName(kind));
    printf("%10s %12s", "target", "achieved");
    for (OpType t : op_types) printf(" %18s", OpTypeName(t));
    printf("\n");
    for (int64_t target : targets) {
      RunResult r = RunOnePoint(kind, workload, target, base);
      if (r.crashed && r.achieved_ops_per_sec < target / 10.0) {
        printf("%10lld %12s", static_cast<long long>(target), "--");
        for (size_t i = 0; i < op_types.size(); ++i) printf(" %18s", "--");
        printf("   (crashed: socket errors)\n");
        continue;
      }
      if (csv != nullptr) {
        fprintf(csv, "%lld,%.1f", static_cast<long long>(target),
                r.achieved_ops_per_sec);
        for (OpType t : op_types) {
          fprintf(csv, ",%.3f", r.MeanLatencyMs(t));
        }
        fprintf(csv, "\n");
      }
      printf("%10lld %12.0f", static_cast<long long>(target),
             r.achieved_ops_per_sec);
      for (OpType t : op_types) {
        auto it = r.per_op.find(t);
        if (it == r.per_op.end() || it->second.count == 0) {
          printf(" %18s", "-");
        } else {
          char buf[32];
          snprintf(buf, sizeof(buf), "%.1f+/-%.1f ms",
                   it->second.mean_latency_ms,
                   it->second.latency_stderr_ms);
          printf(" %18s", buf);
        }
      }
      printf("\n");
    }
    printf("\n");
    if (csv != nullptr) fclose(csv);
  }
}

}  // namespace elephant::ycsb

#endif  // ELEPHANT_BENCH_YCSB_BENCH_UTIL_H_
