// Regenerates Table 4 of the paper: the total map-phase time of Q1's
// MapReduce job at each scale factor, plus the empty-bucket anatomy the
// paper analyzes (512 splits of which 384 are empty; a first wave that
// mixes empty and non-empty files so some slot runs two long tasks).

#include <cstdio>

#include "tpch/dss_benchmark.h"
#include "tpch/paper_reference.h"

using namespace elephant;

int main() {
  tpch::DssBenchmark bench;
  printf("Table 4: total time of Q1's map phase (model, paper in "
         "parentheses)\n\n");
  printf("%-8s | %-16s | %-10s | %-6s\n", "SF", "map phase (s)",
         "map tasks", "waves");
  printf("---------+------------------+------------+-------\n");
  for (size_t i = 0; i < tpch::kPaperScaleFactors.size(); ++i) {
    double sf = tpch::kPaperScaleFactors[i];
    hive::HiveQueryResult r = bench.RunHive(1, sf);
    const auto& scan = r.jobs[0];  // q1_scan_agg
    auto jobs = hive::BuildHiveJobs(1, sf, bench.hive().catalog(),
                                    bench.hive().options());
    printf("%-8.0f | %6.0f (%6.0f)  | %10zu | %6d\n", sf,
           SimTimeToSeconds(scan.stats.map_phase),
           tpch::PaperReference::kQ1MapPhaseSeconds[i],
           jobs[0].map_tasks.size(), scan.stats.map_waves);
  }

  // The anatomy at SF 250 (paper: non-empty tasks ~75 s, empty ~6 s,
  // ideal 93 s, measured 148 s because a slot gets two non-empty files).
  auto jobs = hive::BuildHiveJobs(1, 250, bench.hive().catalog(),
                                  bench.hive().options());
  int empty = 0, nonempty = 0;
  for (const auto& t : jobs[0].map_tasks) {
    (t.input_bytes == 0 ? empty : nonempty)++;
  }
  SimTime nonempty_time = 0, empty_time = 0;
  for (const auto& t : jobs[0].map_tasks) {
    SimTime tt = bench.hive().mr().MapTaskTime(t);
    if (t.input_bytes == 0) {
      empty_time = tt;
    } else {
      nonempty_time = tt;
    }
  }
  printf("\nAnatomy at SF 250: %d non-empty splits (%.0f s each, paper "
         "~75 s), %d empty splits (%.0f s each, paper ~6 s).\n",
         nonempty, SimTimeToSeconds(nonempty_time), empty,
         SimTimeToSeconds(empty_time));
  printf("Ideal schedule would take %.0f s; the greedy first wave mixes "
         "empty and non-empty files, so the makespan is ~2 long tasks.\n",
         SimTimeToSeconds(nonempty_time + 3 * empty_time));
  return 0;
}
