// google-benchmark micro-benchmarks of the engine models themselves:
// how many simulated operations per wall-clock second the framework
// sustains (the practical limit on sweep sizes), plus plan-construction
// and dbgen throughput.

#include <benchmark/benchmark.h>

#include "cluster/cluster.h"
#include "common/rng.h"
#include "common/check.h"
#include "hive/engine.h"
#include "pdw/optimizer.h"
#include "sim/simulation.h"
#include "sqlkv/engine.h"
#include "tpch/dbgen.h"
#include "tpch/dss_benchmark.h"

using namespace elephant;

static void BM_SqlEngineReadOp(benchmark::State& state) {
  sim::Simulation sim;
  cluster::Node node(&sim, 0, cluster::NodeConfig{});
  sqlkv::SqlEngine engine(&sim, &node, sqlkv::SqlEngineOptions{});
  for (uint64_t k = 0; k < 100000; ++k) {
    ELEPHANT_CHECK_OK(engine.LoadRecord(k, 1024));
  }
  Rng rng(1);
  for (auto _ : state) {
    sqlkv::OpOutcome out;
    sim::Latch done(&sim, 1);
    engine.Read(rng.Uniform(100000), &out, &done);
    sim.Run();
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SqlEngineReadOp);

static void BM_SqlEngineUpdateOp(benchmark::State& state) {
  sim::Simulation sim;
  cluster::Node node(&sim, 0, cluster::NodeConfig{});
  sqlkv::SqlEngine engine(&sim, &node, sqlkv::SqlEngineOptions{});
  for (uint64_t k = 0; k < 100000; ++k) {
    ELEPHANT_CHECK_OK(engine.LoadRecord(k, 1024));
  }
  Rng rng(2);
  for (auto _ : state) {
    sqlkv::OpOutcome out;
    sim::Latch done(&sim, 1);
    engine.Update(rng.Uniform(100000), 100, &out, &done);
    sim.Run();
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SqlEngineUpdateOp);

static void BM_HivePlanConstruction(benchmark::State& state) {
  hive::HiveCatalog catalog;
  hive::HiveOptions options;
  int q = 1;
  for (auto _ : state) {
    auto jobs = hive::BuildHiveJobs(q, 1000, catalog, options);
    benchmark::DoNotOptimize(jobs);
    q = q % 22 + 1;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HivePlanConstruction);

static void BM_PdwOptimizerSixWayJoin(benchmark::State& state) {
  using pdw::OptJoin;
  using pdw::OptRelation;
  std::vector<OptRelation> rels = {
      {"lineitem", 6e9, 725e9, "l_orderkey"},
      {"orders", 1.5e9, 160e9, "o_orderkey"},
      {"customer", 150e6, 25e9, "c_custkey"},
      {"supplier", 10e6, 1.4e9, "s_suppkey"},
      {"nation", 25, 1e3, "", true},
      {"region", 5, 1e2, "", true}};
  std::vector<OptJoin> joins = {
      {2, 1, "c_custkey", "o_custkey", 1.0 / 150e6},
      {1, 0, "o_orderkey", "l_orderkey", 1.0 / 1.5e9},
      {0, 3, "l_suppkey", "s_suppkey", 1.0 / 10e6},
      {3, 4, "s_nationkey", "n_nationkey", 1.0 / 25},
      {4, 5, "n_regionkey", "r_regionkey", 1.0 / 5}};
  for (auto _ : state) {
    auto plan = pdw::Optimize(rels, joins);
    benchmark::DoNotOptimize(plan);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PdwOptimizerSixWayJoin);

static void BM_DbgenLineitems(benchmark::State& state) {
  for (auto _ : state) {
    tpch::TpchDatabase db = tpch::GenerateDatabase(0.001);
    benchmark::DoNotOptimize(db.lineitem.num_rows());
  }
  state.SetItemsProcessed(state.iterations() * 6000);
}
BENCHMARK(BM_DbgenLineitems);

static void BM_DssQuerySimulation(benchmark::State& state) {
  tpch::DssBenchmark bench;
  int q = 1;
  for (auto _ : state) {
    auto h = bench.RunHive(q, 1000);
    auto p = bench.RunPdw(q, 1000);
    benchmark::DoNotOptimize(h.total + p.total);
    q = q % 22 + 1;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DssQuerySimulation);

BENCHMARK_MAIN();
