// Regenerates Figure 3 of the paper: workload B (95% reads / 5%
// updates), read and update latency vs throughput.
//
// Paper anchors: the MongoDB systems cannot reach the 40 Kops/s target
// (latencies jump to 24 ms reads / 37 ms updates between 20K and 40K);
// SQL-CS reaches 103,789 ops/s with 8.4 ms reads and 12 ms updates.
// SQL-CS throughput dips while checkpoints flush dirty pages.

#include "ycsb_bench_util.h"

using namespace elephant;
using namespace elephant::ycsb;

int main() {
  RunFigure("Figure 3", WorkloadSpec::B(),
            {5000, 10000, 20000, 40000, 80000, 160000},
            {OpType::kUpdate, OpType::kRead},
            "paper: SQL-CS peaks at 103.8K; MongoDB under 40K");
  return 0;
}
