// Regenerates Figure 1 of the paper: arithmetic and geometric means of
// the TPC-H response times (AM-9/GM-9, excluding Q9), normalized to PDW
// at SF 250.

#include <cstdio>

#include "tpch/dss_benchmark.h"

using namespace elephant;

int main() {
  tpch::DssBenchmark bench;
  auto rows = bench.RunAll(tpch::kPaperScaleFactors);
  auto hive = tpch::DssBenchmark::SummarizeHive(rows);
  auto pdw = tpch::DssBenchmark::SummarizePdw(rows);

  double am_base = pdw.am9[0];
  double gm_base = pdw.gm9[0];

  printf("Figure 1 (a): normalized arithmetic mean (AM-9, PDW@250 = 1)\n");
  printf("%-8s | %-10s | %-10s\n", "SF", "HIVE", "PDW");
  printf("(paper:    22/48/148/500      1/4/17/72)\n");
  for (size_t i = 0; i < tpch::kPaperScaleFactors.size(); ++i) {
    printf("%-8.0f | %10.1f | %10.1f\n", tpch::kPaperScaleFactors[i],
           hive.am9[i] / am_base, pdw.am9[i] / am_base);
  }

  printf("\nFigure 1 (b): normalized geometric mean (GM-9, PDW@250 = 1)\n");
  printf("%-8s | %-10s | %-10s\n", "SF", "HIVE", "PDW");
  printf("(paper:    26/52/144/474      1/5/18/72)\n");
  for (size_t i = 0; i < tpch::kPaperScaleFactors.size(); ++i) {
    printf("%-8.0f | %10.1f | %10.1f\n", tpch::kPaperScaleFactors[i],
           hive.gm9[i] / gm_base, pdw.gm9[i] / gm_base);
  }
  return 0;
}
