// Regenerates Figure 5 of the paper: workload D (95% reads of the
// latest keys / 5% appends), append and read latency vs throughput.
//
// Paper anchors: SQL-CS is CPU-bound and serves nearly all reads from
// the buffer pool (99.5% hits). Mongo-CS peaks at 224,271 ops/s.
// Mongo-AS's range partitioning sends every append AND every
// read-latest to the shard owning the last chunk: at 20 Kops/s its
// append latency is 320 ms (off the chart) and above 20 Kops/s the
// server stops responding (socket exceptions) and throughput drops to
// zero.

#include "ycsb_bench_util.h"

using namespace elephant;
using namespace elephant::ycsb;

int main() {
  RunFigure("Figure 5", WorkloadSpec::D(),
            {20000, 40000, 80000, 160000, 320000, 640000},
            {OpType::kInsert, OpType::kRead},
            "paper: Mongo-AS crashes above 20K; Mongo-CS peaks at 224K");
  return 0;
}
