#ifndef ELEPHANT_BENCH_BENCH_JSON_H_
#define ELEPHANT_BENCH_BENCH_JSON_H_

// Minimal emitter for the machine-readable BENCH_*.json trajectory
// files. Each bench binary renders its per-cell objects itself (they
// differ per bench) and this header supplies the common envelope:
//
//   {"bench": "...", "git_sha": "...", "threads": N,
//    "harness_wall_ms": W, "cells": [ ... ]}
//
// scripts/bench_diff.py consumes two such files and flags >10%
// regressions between them.

#include <cstdio>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace elephant::bench {

/// Peak resident set size of this process in bytes (0 when the
/// platform cannot report it). The kernel's high-water mark is
/// monotone, so per-cell readings record the largest footprint of any
/// cell run so far — cheap to sample and still catches a pipeline that
/// starts materializing intermediates it previously fused away.
inline long long PeakRssBytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<long long>(ru.ru_maxrss);  // bytes on macOS
#else
  return static_cast<long long>(ru.ru_maxrss) * 1024LL;  // KiB on Linux
#endif
#else
  return 0;
#endif
}

/// Git revision baked in at configure time (CMake ELEPHANT_GIT_SHA).
inline const char* BenchGitSha() {
#ifdef ELEPHANT_GIT_SHA
  return ELEPHANT_GIT_SHA;
#else
  return "unknown";
#endif
}

/// Writes the bench envelope with the given pre-rendered cell objects.
/// Returns false (after printing a warning) when the file cannot be
/// written; benches treat that as non-fatal.
inline bool WriteBenchJson(const std::string& path,
                           const std::string& bench_name, int threads,
                           double harness_wall_ms,
                           const std::vector<std::string>& cells) {
  FILE* f = fopen(path.c_str(), "w");
  if (f == nullptr) {
    fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return false;
  }
  fprintf(f,
          "{\n  \"bench\": \"%s\",\n  \"git_sha\": \"%s\",\n"
          "  \"threads\": %d,\n  \"harness_wall_ms\": %.1f,\n"
          "  \"cells\": [\n",
          bench_name.c_str(), BenchGitSha(), threads, harness_wall_ms);
  for (size_t i = 0; i < cells.size(); ++i) {
    fprintf(f, "    %s%s\n", cells[i].c_str(),
            i + 1 < cells.size() ? "," : "");
  }
  fprintf(f, "  ]\n}\n");
  fclose(f);
  printf("\nwrote %s (%zu cells, git %s, %d threads)\n", path.c_str(),
         cells.size(), BenchGitSha(), threads);
  return true;
}

}  // namespace elephant::bench

#endif  // ELEPHANT_BENCH_BENCH_JSON_H_
