// Regenerates Table 6 of the paper: the YCSB workload definitions.
// Also runs one simulated (system, workload) measurement cell per
// combination of the three systems and workloads B/C — concurrently
// when --threads / ELEPHANT_THREADS > 1, each on a fresh testbed — and
// writes the machine-readable BENCH_ycsb.json trajectory (model
// ops/sec + fingerprint per cell, harness wall-clock, thread count,
// git sha). The model numbers and fingerprints are thread-count
// invariant; only the harness wall-clock changes with --threads.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_json.h"
#include "common/string_util.h"
#include "common/task_pool.h"
#include "ycsb_bench_util.h"
#include "ycsb/workload.h"

using namespace elephant;
using namespace elephant::ycsb;

namespace {

double ElapsedMs(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - since)
      .count();
}

struct YcsbCell {
  SystemKind kind;
  char workload;
  int64_t target;
  double achieved = 0;
  uint64_t fingerprint = 0;
  double wall_ms = 0;
  // Fault-tolerance counters: always zero on this no-fault bench, but
  // the fields keep BENCH_ycsb.json schema-compatible with chaos runs.
  int64_t retries = 0;
  int64_t errors = 0;
};

}  // namespace

int main(int argc, char** argv) {
  int threads = DefaultThreadCount();
  std::string out_path = "BENCH_ycsb.json";
  for (int i = 1; i < argc; ++i) {
    if (strncmp(argv[i], "--threads=", 10) == 0) {
      threads = std::max(1, atoi(argv[i] + 10));
    } else if (strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else {
      fprintf(stderr, "usage: %s [--threads=N] [--out=PATH]\n", argv[0]);
      return 2;
    }
  }
  auto harness_start = std::chrono::steady_clock::now();

  printf("Table 6: YCSB benchmark workloads\n\n");
  printf("%-22s | %-40s | %-12s\n", "Workload", "Operations",
         "Distribution");
  printf("-----------------------+------------------------------------------"
         "+-------------\n");
  for (char name : {'A', 'B', 'C', 'D', 'E'}) {
    WorkloadSpec w = WorkloadSpec::ByName(name);
    char ops[128] = "";
    char* p = ops;
    if (w.read > 0) p += snprintf(p, 32, "Read: %.0f%% ", w.read * 100);
    if (w.update > 0) p += snprintf(p, 32, "Update: %.0f%% ", w.update * 100);
    if (w.insert > 0) p += snprintf(p, 32, "Append: %.0f%% ", w.insert * 100);
    if (w.scan > 0) p += snprintf(p, 32, "Scan: %.0f%% ", w.scan * 100);
    const char* dist = w.distribution == Distribution::kLatest
                           ? "latest"
                           : (w.distribution == Distribution::kUniform
                                  ? "uniform"
                                  : "zipfian");
    printf("%c - %-18s | %-40s | %-12s\n", name, w.description.c_str(), ops,
           dist);
  }
  printf("\nScans read at most %d records (the paper's 1000, scaled to the "
         "model keyspace).\n",
         WorkloadSpec::E().max_scan_len);

  // --- measurement cells: 3 systems x workloads B/C, one fresh
  // testbed per cell (RunOnePoint), fanned out on the TaskPool ---
  std::vector<YcsbCell> cells;
  for (SystemKind kind :
       {SystemKind::kMongoAs, SystemKind::kMongoCs, SystemKind::kSqlCs}) {
    for (char w : {'B', 'C'}) {
      cells.push_back({kind, w, 10000, 0, 0, 0});
    }
  }
  auto run_cell = [&](size_t idx) {
    YcsbCell& cell = cells[idx];
    auto t0 = std::chrono::steady_clock::now();
    RunResult r = RunOnePoint(cell.kind, WorkloadSpec::ByName(cell.workload),
                              cell.target, BenchOptions());
    cell.achieved = r.achieved_ops_per_sec;
    cell.fingerprint = r.Fingerprint();
    cell.wall_ms = ElapsedMs(t0);
    cell.retries = r.retries;
    cell.errors = r.transient_errors;
  };
  if (threads > 1) {
    TaskPool::Global(threads).ParallelFor(
        0, cells.size(), 1,
        [&](size_t lo, size_t hi) {
          for (size_t i = lo; i < hi; ++i) run_cell(i);
        },
        threads);
  } else {
    for (size_t i = 0; i < cells.size(); ++i) run_cell(i);
  }

  printf("\nMeasurement cells (target 10000 ops/sec, %d thread(s)):\n",
         threads);
  std::vector<std::string> json_cells;
  json_cells.reserve(cells.size());
  for (const YcsbCell& cell : cells) {
    printf("%-9s workload %c: %8.0f ops/sec  fingerprint %016llx  "
           "(%.0f ms)\n",
           SystemKindName(cell.kind), cell.workload, cell.achieved,
           static_cast<unsigned long long>(cell.fingerprint), cell.wall_ms);
    json_cells.push_back(StrFormat(
        "{\"system\": \"%s\", \"workload\": \"%c\", \"target\": %lld, "
        "\"achieved_ops_per_sec\": %.1f, \"fingerprint\": \"%016llx\", "
        "\"wall_ms\": %.1f, \"retries\": %lld, \"errors\": %lld}",
        SystemKindName(cell.kind), cell.workload,
        static_cast<long long>(cell.target), cell.achieved,
        static_cast<unsigned long long>(cell.fingerprint), cell.wall_ms,
        static_cast<long long>(cell.retries),
        static_cast<long long>(cell.errors)));
  }
  bench::WriteBenchJson(out_path, "ycsb_workloads", threads,
                        ElapsedMs(harness_start), json_cells);
  return 0;
}
