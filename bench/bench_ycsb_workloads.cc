// Regenerates Table 6 of the paper: the YCSB workload definitions.

#include <cstdio>

#include "ycsb/workload.h"

using namespace elephant::ycsb;

int main() {
  printf("Table 6: YCSB benchmark workloads\n\n");
  printf("%-22s | %-40s | %-12s\n", "Workload", "Operations",
         "Distribution");
  printf("-----------------------+------------------------------------------"
         "+-------------\n");
  for (char name : {'A', 'B', 'C', 'D', 'E'}) {
    WorkloadSpec w = WorkloadSpec::ByName(name);
    char ops[128] = "";
    char* p = ops;
    if (w.read > 0) p += snprintf(p, 32, "Read: %.0f%% ", w.read * 100);
    if (w.update > 0) p += snprintf(p, 32, "Update: %.0f%% ", w.update * 100);
    if (w.insert > 0) p += snprintf(p, 32, "Append: %.0f%% ", w.insert * 100);
    if (w.scan > 0) p += snprintf(p, 32, "Scan: %.0f%% ", w.scan * 100);
    const char* dist = w.distribution == Distribution::kLatest
                           ? "latest"
                           : (w.distribution == Distribution::kUniform
                                  ? "uniform"
                                  : "zipfian");
    printf("%c - %-18s | %-40s | %-12s\n", name, w.description.c_str(), ops,
           dist);
  }
  printf("\nScans read at most %d records (the paper's 1000, scaled to the "
         "model keyspace).\n",
         WorkloadSpec::E().max_scan_len);
  return 0;
}
