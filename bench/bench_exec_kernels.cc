// Operator-kernel throughput: columnar vectorized kernels vs the
// row-at-a-time baseline, on TPC-H shaped data.
//
// For each kernel (scan_filter, project, join_probe, aggregate, and the
// combined scan_filter_agg pipeline) the harness runs the same logical
// operation twice: once through the columnar fast paths (the default)
// and once with SetExecForceRowPath(true), which drives every operator
// onto its legacy Row-vector twin. Outputs are checked bit-identical
// via TableFingerprint before any timing is reported, so the speedup is
// never bought with a behavior change.
//
// Flags: --sf=F (default 0.1), --small (= --sf=0.02, for CI),
// --threads=N (default 1: single-core kernel throughput),
// --reps=R (default 3, best-of), --out=PATH (default BENCH_exec.json).
//
// Each JSON cell carries rows (input rows driven through the kernel),
// wall_ms (best rep) and rows_per_sec; scripts/bench_diff.py treats
// rows_per_sec as higher-is-better.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_json.h"
#include "common/check.h"
#include "common/date.h"
#include "common/string_util.h"
#include "exec/operators.h"
#include "exec/table.h"
#include "tpch/dbgen.h"

namespace {

using elephant::DateCode;
using elephant::MakeDate;
using elephant::StrFormat;
using elephant::exec::AggKind;
using elephant::exec::AsDouble;
using elephant::exec::AsInt;
using elephant::exec::ColAgg;
using elephant::exec::CopyCol;
using elephant::exec::CountAgg;
using elephant::exec::DoubleExprCol;
using elephant::exec::Filter;
using elephant::exec::HashAggregateOn;
using elephant::exec::HashJoinOn;
using elephant::exec::IndexPredicate;
using elephant::exec::Predicate;
using elephant::exec::ProjectColumns;
using elephant::exec::Row;
using elephant::exec::SetExecForceRowPath;
using elephant::exec::SetExecThreads;
using elephant::exec::Table;
using elephant::exec::TableFingerprint;
using elephant::exec::ValueType;

double ElapsedMs(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - since)
      .count();
}

struct KernelResult {
  std::string kernel;
  std::string layout;  // "columnar" | "row"
  size_t rows = 0;     // input rows driven through the kernel
  double wall_ms = 0;  // best of reps
  uint64_t fingerprint = 0;
};

/// Runs `body` `reps` times, returns best wall ms and the fingerprint
/// of the last output (all reps produce the same table).
template <typename Body>
KernelResult RunKernel(const std::string& kernel, const std::string& layout,
                       size_t rows, int reps, Body body) {
  KernelResult res;
  res.kernel = kernel;
  res.layout = layout;
  res.rows = rows;
  res.wall_ms = 0;
  for (int r = 0; r < reps; ++r) {
    auto start = std::chrono::steady_clock::now();
    Table out = body();
    double ms = ElapsedMs(start);
    if (r == 0 || ms < res.wall_ms) res.wall_ms = ms;
    if (r == 0) res.fingerprint = TableFingerprint(out);
  }
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  double sf = 0.1;
  int threads = 1;
  int reps = 3;
  std::string out_path = "BENCH_exec.json";
  for (int i = 1; i < argc; ++i) {
    if (strncmp(argv[i], "--sf=", 5) == 0) {
      sf = atof(argv[i] + 5);
    } else if (strcmp(argv[i], "--small") == 0) {
      sf = 0.02;
    } else if (strncmp(argv[i], "--threads=", 10) == 0) {
      threads = atoi(argv[i] + 10);
    } else if (strncmp(argv[i], "--reps=", 7) == 0) {
      reps = atoi(argv[i] + 7);
    } else if (strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else {
      fprintf(stderr,
              "usage: %s [--sf=F] [--small] [--threads=N] [--reps=R] "
              "[--out=PATH]\n",
              argv[0]);
      return 2;
    }
  }

  auto harness_start = std::chrono::steady_clock::now();
  elephant::tpch::DbgenOptions opt;
  elephant::tpch::TpchDatabase db =
      elephant::tpch::GenerateDatabase(sf, opt);
  const Table& l = db.lineitem;
  const Table& o = db.orders;
  const size_t n = l.num_rows();
  printf("exec kernel bench: sf %g (%zu lineitem rows), %d thread(s), "
         "best of %d\n\n",
         sf, n, threads, reps);
  SetExecThreads(threads);

  const DateCode lo = MakeDate(1994, 1, 1);
  const DateCode hi = MakeDate(1995, 1, 1);
  const int c_ship = l.ColIndex("l_shipdate");
  const int c_disc = l.ColIndex("l_discount");
  const int c_qty = l.ColIndex("l_quantity");

  std::vector<std::pair<std::string, std::function<Table()>>> columnar;
  std::vector<std::pair<std::string, std::function<Table()>>> rowwise;

  // -- scan_filter: Q6-shaped range scan -----------------------------------
  columnar.emplace_back("scan_filter", [&]() {
    const int64_t* ship = l.IntData(c_ship).data();
    const double* disc = l.DoubleData(c_disc).data();
    const double* qty = l.DoubleData(c_qty).data();
    return Filter(l, IndexPredicate([=](size_t i) {
                    return ship[i] >= lo && ship[i] < hi &&
                           disc[i] >= 0.05 - 1e-9 && disc[i] <= 0.07 + 1e-9 &&
                           qty[i] < 24;
                  }));
  });
  rowwise.emplace_back("scan_filter", [&]() {
    return Filter(l, Predicate([=](const Row& r) {
                    int64_t d = AsInt(r[c_ship]);
                    double dc = AsDouble(r[c_disc]);
                    return d >= lo && d < hi && dc >= 0.05 - 1e-9 &&
                           dc <= 0.07 + 1e-9 && AsDouble(r[c_qty]) < 24;
                  }));
  });

  // -- project: copy + computed revenue ------------------------------------
  columnar.emplace_back("project", [&]() {
    const double* price = l.DoubleData(l.ColIndex("l_extendedprice")).data();
    const double* disc = l.DoubleData(c_disc).data();
    return ProjectColumns(
        l, {CopyCol(l, "l_orderkey"), CopyCol(l, "l_shipmode"),
            DoubleExprCol("revenue", [price, disc](size_t i) {
              return price[i] * (1.0 - disc[i]);
            })});
  });
  rowwise.emplace_back("project", [&]() {
    return Project(
        l, {{"l_orderkey", ValueType::kInt,
             elephant::exec::Col(l, "l_orderkey")},
            {"l_shipmode", ValueType::kString,
             elephant::exec::Col(l, "l_shipmode")},
            {"revenue", ValueType::kDouble, elephant::exec::Revenue(l)}});
  });

  // -- join_probe: lineitem probing the orders build side ------------------
  auto join_body = [&]() {
    return HashJoinOn(l, o, {"l_orderkey"}, {"o_orderkey"});
  };
  columnar.emplace_back("join_probe", join_body);
  rowwise.emplace_back("join_probe", join_body);

  // -- aggregate: Q1-shaped grouped sums (ColAgg carries both paths) -------
  auto agg_body = [&]() {
    return HashAggregateOn(
        l, {"l_returnflag", "l_linestatus"},
        {ColAgg(AggKind::kSum, l, "l_quantity", "sum_qty", ValueType::kDouble),
         ColAgg(AggKind::kSum, l, "l_extendedprice", "sum_price",
                ValueType::kDouble),
         ColAgg(AggKind::kAvg, l, "l_discount", "avg_disc",
                ValueType::kDouble),
         CountAgg("count_order")});
  };
  columnar.emplace_back("aggregate", agg_body);
  rowwise.emplace_back("aggregate", agg_body);

  // -- scan_filter_agg: the acceptance pipeline ----------------------------
  columnar.emplace_back("scan_filter_agg", [&]() {
    const int64_t* ship = l.IntData(c_ship).data();
    const double* disc = l.DoubleData(c_disc).data();
    Table f = Filter(l, IndexPredicate([=](size_t i) {
                       return ship[i] >= lo && ship[i] < hi &&
                              disc[i] >= 0.05 - 1e-9;
                     }));
    return HashAggregateOn(
        f, {},
        {ColAgg(AggKind::kSum, f, "l_extendedprice", "sum_price",
                ValueType::kDouble),
         CountAgg("matched")});
  });
  rowwise.emplace_back("scan_filter_agg", [&]() {
    Table f = Filter(l, Predicate([=](const Row& r) {
                       int64_t d = AsInt(r[c_ship]);
                       return d >= lo && d < hi &&
                              AsDouble(r[c_disc]) >= 0.05 - 1e-9;
                     }));
    return HashAggregateOn(
        f, {},
        {ColAgg(AggKind::kSum, f, "l_extendedprice", "sum_price",
                ValueType::kDouble),
         CountAgg("matched")});
  });

  printf("%-18s %14s %14s %9s\n", "kernel", "row rows/s", "col rows/s",
         "speedup");
  std::vector<std::string> cells;
  for (size_t k = 0; k < columnar.size(); ++k) {
    const std::string& name = columnar[k].first;
    SetExecForceRowPath(false);
    KernelResult col =
        RunKernel(name, "columnar", n, reps, columnar[k].second);
    SetExecForceRowPath(true);
    KernelResult row = RunKernel(name, "row", n, reps, rowwise[k].second);
    SetExecForceRowPath(false);
    ELEPHANT_CHECK(col.fingerprint == row.fingerprint)
        << "kernel '" << name << "' diverges between layouts";
    for (const KernelResult* r : {&row, &col}) {
      double rps = r->rows / (r->wall_ms / 1000.0);
      cells.push_back(StrFormat(
          "{\"kernel\": \"%s\", \"layout\": \"%s\", \"sf\": %g, "
          "\"rows\": %zu, \"wall_ms\": %.3f, \"rows_per_sec\": %.0f, "
          "\"fingerprint\": \"%016llx\"}",
          r->kernel.c_str(), r->layout.c_str(), sf, r->rows, r->wall_ms,
          rps, static_cast<unsigned long long>(r->fingerprint)));
    }
    printf("%-18s %14.0f %14.0f %8.2fx\n", name.c_str(),
           row.rows / (row.wall_ms / 1000.0),
           col.rows / (col.wall_ms / 1000.0), row.wall_ms / col.wall_ms);
  }

  elephant::bench::WriteBenchJson(out_path, "exec_kernels", threads,
                                  ElapsedMs(harness_start), cells);
  return 0;
}
