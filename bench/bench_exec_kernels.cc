// Operator-kernel throughput: columnar vectorized kernels vs the
// row-at-a-time baseline, on TPC-H shaped data.
//
// For each kernel (scan_filter, project, join_probe, aggregate, and the
// combined scan_filter_agg pipeline) the harness runs the same logical
// operation twice: once through the columnar fast paths (the default)
// and once with SetExecForceRowPath(true), which drives every operator
// onto its legacy Row-vector twin. Outputs are checked bit-identical
// via TableFingerprint before any timing is reported, so the speedup is
// never bought with a behavior change.
//
// Flags: --sf=F (default 0.1), --small (= --sf=0.02, for CI),
// --threads=N (default 1: single-core kernel throughput),
// --reps=R (default 3, best-of), --out=PATH (default BENCH_exec.json).
//
// Each JSON cell carries rows (input rows driven through the kernel),
// wall_ms (best rep) and rows_per_sec; scripts/bench_diff.py treats
// rows_per_sec as higher-is-better.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_json.h"
#include "common/check.h"
#include "common/date.h"
#include "common/string_util.h"
#include "exec/compress.h"
#include "exec/encoded_scan.h"
#include "exec/fused.h"
#include "exec/operators.h"
#include "exec/segcache.h"
#include "exec/spill.h"
#include "exec/table.h"
#include "tpch/dbgen.h"

namespace {

using elephant::DateCode;
using elephant::MakeDate;
using elephant::StrFormat;
using elephant::exec::AggKind;
using elephant::exec::AsDouble;
using elephant::exec::AsInt;
using elephant::exec::AggExpr;
using elephant::exec::AggFactory;
using elephant::exec::ColAgg;
using elephant::exec::ColAtLeast;
using elephant::exec::ColLess;
using elephant::exec::ColRange;
using elephant::exec::CopyCol;
using elephant::exec::CountAgg;
using elephant::exec::DoubleExprCol;
using elephant::exec::Filter;
using elephant::exec::FusedAggregate;
using elephant::exec::FusedCounters;
using elephant::exec::FusedCountersSnapshot;
using elephant::exec::FusedFilter;
using elephant::exec::ResetFusedCounters;
using elephant::exec::ScanSpec;
using elephant::exec::SpecOf;
using elephant::exec::HashAggregateOn;
using elephant::exec::HashJoinOn;
using elephant::exec::IndexPredicate;
using elephant::exec::Predicate;
using elephant::exec::ProjectColumns;
using elephant::exec::Row;
using elephant::exec::SetExecForceRowPath;
using elephant::exec::SetExecThreads;
using elephant::exec::Table;
using elephant::exec::TableFingerprint;
using elephant::exec::ValueType;

double ElapsedMs(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - since)
      .count();
}

struct KernelResult {
  std::string kernel;
  std::string layout;  // "columnar" | "row"
  size_t rows = 0;     // input rows driven through the kernel
  double wall_ms = 0;  // best of reps
  uint64_t fingerprint = 0;
};

/// Runs `body` `reps` times, returns best wall ms and the fingerprint
/// of the last output (all reps produce the same table).
template <typename Body>
KernelResult RunKernel(const std::string& kernel, const std::string& layout,
                       size_t rows, int reps, Body body) {
  KernelResult res;
  res.kernel = kernel;
  res.layout = layout;
  res.rows = rows;
  res.wall_ms = 0;
  for (int r = 0; r < reps; ++r) {
    auto start = std::chrono::steady_clock::now();
    Table out = body();
    double ms = ElapsedMs(start);
    if (r == 0 || ms < res.wall_ms) res.wall_ms = ms;
    if (r == 0) res.fingerprint = TableFingerprint(out);
  }
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  double sf = 0.1;
  int threads = 1;
  int reps = 3;
  std::string out_path = "BENCH_exec.json";
  for (int i = 1; i < argc; ++i) {
    if (strncmp(argv[i], "--sf=", 5) == 0) {
      sf = atof(argv[i] + 5);
    } else if (strcmp(argv[i], "--small") == 0) {
      sf = 0.02;
    } else if (strncmp(argv[i], "--threads=", 10) == 0) {
      threads = atoi(argv[i] + 10);
    } else if (strncmp(argv[i], "--reps=", 7) == 0) {
      reps = atoi(argv[i] + 7);
    } else if (strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else {
      fprintf(stderr,
              "usage: %s [--sf=F] [--small] [--threads=N] [--reps=R] "
              "[--out=PATH]\n",
              argv[0]);
      return 2;
    }
  }

  auto harness_start = std::chrono::steady_clock::now();
  elephant::tpch::DbgenOptions opt;
  elephant::tpch::TpchDatabase db =
      elephant::tpch::GenerateDatabase(sf, opt);
  const Table& l = db.lineitem;
  const Table& o = db.orders;
  const size_t n = l.num_rows();
  printf("exec kernel bench: sf %g (%zu lineitem rows), %d thread(s), "
         "best of %d\n\n",
         sf, n, threads, reps);
  SetExecThreads(threads);

  const DateCode lo = MakeDate(1994, 1, 1);
  const DateCode hi = MakeDate(1995, 1, 1);
  const int c_ship = l.ColIndex("l_shipdate");
  const int c_disc = l.ColIndex("l_discount");
  const int c_qty = l.ColIndex("l_quantity");

  std::vector<std::pair<std::string, std::function<Table()>>> columnar;
  std::vector<std::pair<std::string, std::function<Table()>>> rowwise;

  // -- scan_filter: Q6-shaped range scan -----------------------------------
  columnar.emplace_back("scan_filter", [&]() {
    const int64_t* ship = l.IntData(c_ship).data();
    const double* disc = l.DoubleData(c_disc).data();
    const double* qty = l.DoubleData(c_qty).data();
    return Filter(l, IndexPredicate([=](size_t i) {
                    return ship[i] >= lo && ship[i] < hi &&
                           disc[i] >= 0.05 - 1e-9 && disc[i] <= 0.07 + 1e-9 &&
                           qty[i] < 24;
                  }));
  });
  rowwise.emplace_back("scan_filter", [&]() {
    return Filter(l, Predicate([=](const Row& r) {
                    int64_t d = AsInt(r[c_ship]);
                    double dc = AsDouble(r[c_disc]);
                    return d >= lo && d < hi && dc >= 0.05 - 1e-9 &&
                           dc <= 0.07 + 1e-9 && AsDouble(r[c_qty]) < 24;
                  }));
  });

  // -- project: copy + computed revenue ------------------------------------
  const int c_price = l.ColIndex("l_extendedprice");
  columnar.emplace_back("project", [&, c_price]() {
    const double* price = l.DoubleData(c_price).data();
    const double* disc = l.DoubleData(c_disc).data();
    return ProjectColumns(
        l, {CopyCol(l, "l_orderkey"), CopyCol(l, "l_shipmode"),
            DoubleExprCol("revenue", [price, disc](size_t i) {
              return price[i] * (1.0 - disc[i]);
            })});
  });
  rowwise.emplace_back("project", [&]() {
    return Project(
        l, {{"l_orderkey", ValueType::kInt,
             elephant::exec::Col(l, "l_orderkey")},
            {"l_shipmode", ValueType::kString,
             elephant::exec::Col(l, "l_shipmode")},
            {"revenue", ValueType::kDouble, elephant::exec::Revenue(l)}});
  });

  // -- join_probe: lineitem probing the orders build side ------------------
  auto join_body = [&]() {
    return HashJoinOn(l, o, {"l_orderkey"}, {"o_orderkey"});
  };
  columnar.emplace_back("join_probe", join_body);
  rowwise.emplace_back("join_probe", join_body);

  // -- aggregate: Q1-shaped grouped sums (ColAgg carries both paths) -------
  auto agg_body = [&]() {
    return HashAggregateOn(
        l, {"l_returnflag", "l_linestatus"},
        {ColAgg(AggKind::kSum, l, "l_quantity", "sum_qty", ValueType::kDouble),
         ColAgg(AggKind::kSum, l, "l_extendedprice", "sum_price",
                ValueType::kDouble),
         ColAgg(AggKind::kAvg, l, "l_discount", "avg_disc",
                ValueType::kDouble),
         CountAgg("count_order")});
  };
  columnar.emplace_back("aggregate", agg_body);
  rowwise.emplace_back("aggregate", agg_body);

  // -- scan_filter_agg: the acceptance pipeline ----------------------------
  columnar.emplace_back("scan_filter_agg", [&]() {
    const int64_t* ship = l.IntData(c_ship).data();
    const double* disc = l.DoubleData(c_disc).data();
    Table f = Filter(l, IndexPredicate([=](size_t i) {
                       return ship[i] >= lo && ship[i] < hi &&
                              disc[i] >= 0.05 - 1e-9;
                     }));
    return HashAggregateOn(
        f, {},
        {ColAgg(AggKind::kSum, f, "l_extendedprice", "sum_price",
                ValueType::kDouble),
         CountAgg("matched")});
  });
  rowwise.emplace_back("scan_filter_agg", [&]() {
    Table f = Filter(l, Predicate([=](const Row& r) {
                       int64_t d = AsInt(r[c_ship]);
                       return d >= lo && d < hi &&
                              AsDouble(r[c_disc]) >= 0.05 - 1e-9;
                     }));
    return HashAggregateOn(
        f, {},
        {ColAgg(AggKind::kSum, f, "l_extendedprice", "sum_price",
                ValueType::kDouble),
         CountAgg("matched")});
  });

  printf("%-18s %14s %14s %9s\n", "kernel", "row rows/s", "col rows/s",
         "speedup");
  std::vector<std::string> cells;
  for (size_t k = 0; k < columnar.size(); ++k) {
    const std::string& name = columnar[k].first;
    SetExecForceRowPath(false);
    KernelResult col =
        RunKernel(name, "columnar", n, reps, columnar[k].second);
    SetExecForceRowPath(true);
    KernelResult row = RunKernel(name, "row", n, reps, rowwise[k].second);
    SetExecForceRowPath(false);
    ELEPHANT_CHECK(col.fingerprint == row.fingerprint)
        << "kernel '" << name << "' diverges between layouts";
    for (const KernelResult* r : {&row, &col}) {
      double rps = r->rows / (r->wall_ms / 1000.0);
      cells.push_back(StrFormat(
          "{\"kernel\": \"%s\", \"layout\": \"%s\", \"sf\": %g, "
          "\"rows\": %zu, \"wall_ms\": %.3f, \"rows_per_sec\": %.0f, "
          "\"fingerprint\": \"%016llx\", \"peak_rss_bytes\": %lld}",
          r->kernel.c_str(), r->layout.c_str(), sf, r->rows, r->wall_ms,
          rps, static_cast<unsigned long long>(r->fingerprint),
          elephant::bench::PeakRssBytes()));
    }
    printf("%-18s %14.0f %14.0f %8.2fx\n", name.c_str(),
           row.rows / (row.wall_ms / 1000.0),
           col.rows / (col.wall_ms / 1000.0), row.wall_ms / col.wall_ms);
  }

  // -- fused pipelines vs their materializing baselines --------------------
  //
  // Each case runs the materializing columnar baseline and the fused
  // twin, checks the outputs bit-identical, and reports both cells with
  // the fused planner's chunk counters (informational in bench_diff.py:
  // they describe how the speedup was obtained, they are not gated).
  // scan_sorted sweeps selectivity on the verified-sorted l_orderkey —
  // the binary-search path — while scan_filter/scan_filter_agg carry
  // the Q6 shape whose filter columns are unclustered (zone maps cannot
  // prune; the win there is fusion, not skipping).
  struct FusedCase {
    std::string kernel;
    int selectivity;  // percent of rows; -1 when not a sweep cell
    std::function<Table()> baseline;
    std::function<Table()> fused;
  };
  std::vector<FusedCase> fused_cases;

  ScanSpec q6;
  q6.ranges.push_back(ColRange(l, "l_shipdate", lo, hi, false, true));
  q6.ranges.push_back(ColRange(l, "l_discount", 0.05 - 1e-9, 0.07 + 1e-9));
  q6.ranges.push_back(ColLess(l, "l_quantity", 24.0));
  fused_cases.push_back(
      {"scan_filter", -1, columnar.front().second,
       [&l, q6]() { return FusedFilter(l, q6); }});

  AggFactory q6_aggs = [](const Table& in) {
    return std::vector<AggExpr>{
        ColAgg(AggKind::kSum, in, "l_extendedprice", "sum_price",
               ValueType::kDouble),
        CountAgg("matched")};
  };
  ScanSpec q6_agg_spec;
  q6_agg_spec.ranges.push_back(ColRange(l, "l_shipdate", lo, hi, false,
                                        true));
  q6_agg_spec.ranges.push_back(ColAtLeast(l, "l_discount", 0.05 - 1e-9));
  fused_cases.push_back(
      {"scan_filter_agg", -1, columnar.back().second,
       [&l, q6_agg_spec, q6_aggs]() {
         return FusedAggregate(l, q6_agg_spec, {}, q6_aggs);
       }});

  const int c_okey = l.ColIndex("l_orderkey");
  const std::vector<int64_t>& okv = l.IntData(c_okey);
  int64_t ok_min = okv.front();
  int64_t ok_max = okv.front();
  for (int64_t v : okv) {
    if (v < ok_min) ok_min = v;
    if (v > ok_max) ok_max = v;
  }
  for (int pct : {0, 1, 50, 100}) {
    double cut = static_cast<double>(ok_min) +
                 (static_cast<double>(ok_max - ok_min) + 1.0) *
                     (static_cast<double>(pct) / 100.0);
    fused_cases.push_back(
        {"scan_sorted", pct,
         [&l, c_okey, cut]() {
           const int64_t* ok = l.IntData(c_okey).data();
           return Filter(l, IndexPredicate([ok, cut](size_t i) {
                           return static_cast<double>(ok[i]) < cut;
                         }));
         },
         [&l, cut]() {
           return FusedFilter(l, SpecOf(ColLess(l, "l_orderkey", cut)));
         }});
  }

  printf("\n%-18s %5s %14s %14s %9s %22s\n", "fused pipeline", "sel%",
         "base rows/s", "fused rows/s", "speedup", "pruned/full/scanned");
  for (const FusedCase& fc : fused_cases) {
    SetExecForceRowPath(false);
    KernelResult base =
        RunKernel(fc.kernel, "columnar", n, reps, fc.baseline);
    ResetFusedCounters();
    KernelResult fus = RunKernel(fc.kernel, "fused", n, reps, fc.fused);
    FusedCounters fcnt = FusedCountersSnapshot();
    ELEPHANT_CHECK(base.fingerprint == fus.fingerprint)
        << "fused pipeline '" << fc.kernel << "' diverges from baseline";
    // Counters are deterministic per run; divide the rep total back out.
    uint64_t ureps = static_cast<uint64_t>(reps);
    uint64_t pruned = fcnt.chunks_pruned / ureps;
    uint64_t full = fcnt.chunks_full_match / ureps;
    uint64_t scanned = fcnt.chunks_scanned / ureps;
    uint64_t rows_scanned = fcnt.rows_scanned / ureps;
    std::string sel_field =
        fc.selectivity >= 0
            ? StrFormat("\"selectivity\": %d, ", fc.selectivity)
            : std::string();
    for (const KernelResult* r : {&base, &fus}) {
      // The main loop already emitted the columnar cells for the
      // non-sweep kernels; re-emitting would duplicate their identity.
      if (r == &base && fc.selectivity < 0) continue;
      double rps = r->rows / (r->wall_ms / 1000.0);
      std::string counters =
          r == &fus ? StrFormat(", \"chunks_pruned\": %llu, "
                                "\"chunks_full_match\": %llu, "
                                "\"chunks_scanned\": %llu, "
                                "\"rows_scanned\": %llu",
                                static_cast<unsigned long long>(pruned),
                                static_cast<unsigned long long>(full),
                                static_cast<unsigned long long>(scanned),
                                static_cast<unsigned long long>(rows_scanned))
                    : std::string();
      cells.push_back(StrFormat(
          "{\"kernel\": \"%s\", \"layout\": \"%s\", \"sf\": %g, %s"
          "\"rows\": %zu, \"wall_ms\": %.3f, \"rows_per_sec\": %.0f, "
          "\"fingerprint\": \"%016llx\", \"peak_rss_bytes\": %lld%s}",
          r->kernel.c_str(), r->layout.c_str(), sf, sel_field.c_str(),
          r->rows, r->wall_ms, rps,
          static_cast<unsigned long long>(r->fingerprint),
          elephant::bench::PeakRssBytes(), counters.c_str()));
    }
    char sel_str[8];
    if (fc.selectivity >= 0) {
      snprintf(sel_str, sizeof sel_str, "%d", fc.selectivity);
    } else {
      snprintf(sel_str, sizeof sel_str, "-");
    }
    printf("%-18s %5s %14.0f %14.0f %8.2fx %8llu/%llu/%llu\n",
           fc.kernel.c_str(), sel_str,
           base.rows / (base.wall_ms / 1000.0),
           fus.rows / (fus.wall_ms / 1000.0), base.wall_ms / fus.wall_ms,
           static_cast<unsigned long long>(pruned),
           static_cast<unsigned long long>(full),
           static_cast<unsigned long long>(scanned));
  }

  // -- direct-on-encoded scans over a frozen lineitem ----------------------
  //
  // lineitem is frozen (segment-backed compressed chunks) and the same
  // FusedSelect runs twice: direct-on-encoded kernels vs the
  // decode-first oracle (ELEPHANT_ENCODED_SCAN=0 path). Residency is
  // released before every rep so both paths actually read the encoded
  // chunks. Selections are checked identical to each other and to the
  // resident table before timings are reported. The counter triple
  // says how the direct path worked: chunks evaluated on encoded
  // bytes, RLE runs judged once, packed 64-bit words scanned.
  {
    using elephant::exec::CodeEquals;
    using elephant::exec::EncodedScanCounters;
    using elephant::exec::EncodedScanCountersSnapshot;
    using elephant::exec::FusedSelect;
    using elephant::exec::ResetEncodedScanCounters;
    using elephant::exec::SetExecEncodedScanPath;

    Table fl = l;
    fl.Freeze();
    fl.ReleaseResident();
    ELEPHANT_CHECK(fl.is_frozen()) << "lineitem failed to freeze";

    struct EncCase {
      std::string name;
      ScanSpec spec;
    };
    std::vector<EncCase> enc_cases;
    enc_cases.push_back({"q6_range", q6});
    const double cut1 = static_cast<double>(ok_min) +
                        (static_cast<double>(ok_max - ok_min) + 1.0) * 0.01;
    enc_cases.push_back(
        {"sorted_1pct", SpecOf(ColLess(l, "l_orderkey", cut1))});
    enc_cases.push_back(
        {"returnflag_eq", SpecOf(CodeEquals(l, "l_returnflag", "R"))});

    auto sel_fingerprint = [](const std::vector<uint32_t>& sel) {
      uint64_t h = 0xCBF29CE484222325ULL;
      for (uint32_t v : sel) {
        h ^= v;
        h *= 0x100000001B3ULL;
      }
      return h ^ sel.size();
    };

    printf("\n%-16s %14s %14s %9s %20s\n", "encoded scan", "decode rows/s",
           "direct rows/s", "speedup", "direct/runs/words");
    for (const EncCase& ec : enc_cases) {
      auto run = [&](bool direct) {
        SetExecEncodedScanPath(direct);
        double best = 0;
        uint64_t fp = 0;
        for (int r = 0; r < reps; ++r) {
          fl.ReleaseResident();
          auto start = std::chrono::steady_clock::now();
          std::vector<uint32_t> sel = FusedSelect(fl, ec.spec);
          double ms = ElapsedMs(start);
          if (r == 0 || ms < best) best = ms;
          fp = sel_fingerprint(sel);
        }
        SetExecEncodedScanPath(true);
        return std::make_pair(best, fp);
      };
      ResetEncodedScanCounters();
      std::pair<double, uint64_t> direct = run(true);
      EncodedScanCounters ecnt = EncodedScanCountersSnapshot();
      std::pair<double, uint64_t> decode = run(false);
      const uint64_t want = sel_fingerprint(FusedSelect(l, ec.spec));
      ELEPHANT_CHECK(direct.second == want && decode.second == want)
          << "encoded scan '" << ec.name
          << "' diverges from the resident path";
      uint64_t ureps = static_cast<uint64_t>(reps);
      uint64_t chunks_direct = ecnt.chunks_direct / ureps;
      uint64_t runs = ecnt.runs_evaluated / ureps;
      uint64_t words = ecnt.words_scanned / ureps;
      struct Lane {
        const char* layout;
        double wall_ms;
      };
      for (const Lane& lane : {Lane{"decode_first", decode.first},
                               Lane{"direct", direct.first}}) {
        double rps = n / (lane.wall_ms / 1000.0);
        std::string counters =
            strcmp(lane.layout, "direct") == 0
                ? StrFormat(", \"chunks_direct\": %llu, "
                            "\"runs_evaluated\": %llu, "
                            "\"words_scanned\": %llu",
                            static_cast<unsigned long long>(chunks_direct),
                            static_cast<unsigned long long>(runs),
                            static_cast<unsigned long long>(words))
                : std::string();
        cells.push_back(StrFormat(
            "{\"kernel\": \"encoded_scan\", \"layout\": \"%s\", "
            "\"case\": \"%s\", \"sf\": %g, \"rows\": %zu, "
            "\"wall_ms\": %.3f, \"rows_per_sec\": %.0f, "
            "\"fingerprint\": \"%016llx\", \"peak_rss_bytes\": %lld%s}",
            lane.layout, ec.name.c_str(), sf, n, lane.wall_ms, rps,
            static_cast<unsigned long long>(want),
            elephant::bench::PeakRssBytes(), counters.c_str()));
      }
      printf("%-16s %14.0f %14.0f %8.2fx %8llu/%llu/%llu\n",
             ec.name.c_str(), n / (decode.first / 1000.0),
             n / (direct.first / 1000.0), decode.first / direct.first,
             static_cast<unsigned long long>(chunks_direct),
             static_cast<unsigned long long>(runs),
             static_cast<unsigned long long>(words));
    }
  }

  // -- compression: forced-codec encode/decode throughput ------------------
  //
  // Each codec is driven over data shaped to fit it (so every cell
  // measures the codec's real code path, not its plain fallback):
  // l_shipdate for RLE/FOR/bitpack (dense non-negative dates with
  // runs), l_extendedprice for the double codecs. Throughput is over
  // the plain (decoded) bytes — "GB/s of logical column data".
  {
    using elephant::exec::Codec;
    using elephant::exec::CodecName;
    using elephant::exec::DecodeDoubleChunk;
    using elephant::exec::DecodeInt64Chunk;
    using elephant::exec::EncodedChunk;
    using elephant::exec::EncodeDoubleChunk;
    using elephant::exec::EncodeInt64Chunk;
    constexpr size_t kChunk = 4096;
    const std::vector<int64_t>& dates = l.IntData(c_ship);
    const std::vector<double>& prices = l.DoubleData(c_price);
    printf("\n%-12s %6s %12s %12s %8s\n", "codec", "type", "encode GB/s",
           "decode GB/s", "ratio");
    struct CodecCase {
      Codec codec;
      bool is_double;
    };
    for (const CodecCase& cc :
         {CodecCase{Codec::kPlain, false}, CodecCase{Codec::kRle, false},
          CodecCase{Codec::kBitPack, false}, CodecCase{Codec::kFor, false},
          CodecCase{Codec::kPlain, true}, CodecCase{Codec::kRle, true}}) {
      size_t rows = cc.is_double ? prices.size() : dates.size();
      size_t plain_bytes = rows * 8;
      double enc_ms = 0;
      double dec_ms = 0;
      size_t enc_bytes = 0;
      std::vector<EncodedChunk> chunks;
      for (int r = 0; r < reps; ++r) {
        chunks.clear();
        auto start = std::chrono::steady_clock::now();
        for (size_t i = 0; i < rows; i += kChunk) {
          size_t m = std::min(kChunk, rows - i);
          chunks.push_back(cc.is_double
                               ? EncodeDoubleChunk(&prices[i], m, cc.codec)
                               : EncodeInt64Chunk(&dates[i], m, cc.codec));
        }
        double ms = ElapsedMs(start);
        if (r == 0 || ms < enc_ms) enc_ms = ms;
      }
      for (const EncodedChunk& c : chunks) enc_bytes += c.EncodedBytes();
      std::vector<int64_t> iout(kChunk);
      std::vector<double> dout(kChunk);
      for (int r = 0; r < reps; ++r) {
        auto start = std::chrono::steady_clock::now();
        for (const EncodedChunk& c : chunks) {
          if (cc.is_double) {
            DecodeDoubleChunk(c, dout.data());
          } else {
            DecodeInt64Chunk(c, iout.data());
          }
        }
        double ms = ElapsedMs(start);
        if (r == 0 || ms < dec_ms) dec_ms = ms;
      }
      double enc_gbps = plain_bytes / 1e9 / (enc_ms / 1000.0);
      double dec_gbps = plain_bytes / 1e9 / (dec_ms / 1000.0);
      double ratio = static_cast<double>(plain_bytes) /
                     static_cast<double>(enc_bytes);
      printf("%-12s %6s %12.2f %12.2f %7.2fx\n", CodecName(cc.codec),
             cc.is_double ? "f64" : "i64", enc_gbps, dec_gbps, ratio);
      cells.push_back(StrFormat(
          "{\"kernel\": \"codec\", \"layout\": \"%s\", \"codec\": \"%s\", "
          "\"sf\": %g, \"rows\": %zu, \"encode_gbps\": %.3f, "
          "\"decode_gbps\": %.3f, \"compressed_ratio\": %.3f}",
          cc.is_double ? "f64" : "i64", CodecName(cc.codec), sf, rows,
          enc_gbps, dec_gbps, ratio));
    }
  }

  // -- compression: auto-chosen ratio per TPC-H column ---------------------
  {
    using elephant::exec::DecodeColumn;
    using elephant::exec::EncodeColumn;
    using elephant::exec::EncodedColumn;
    struct ColCase {
      const Table* t;
      const char* table;
      const char* column;
    };
    printf("\n%-26s %8s %12s %12s\n", "column", "ratio", "encode GB/s",
           "decode GB/s");
    for (const ColCase& cs : {ColCase{&l, "lineitem", "l_orderkey"},
                              ColCase{&l, "lineitem", "l_shipdate"},
                              ColCase{&l, "lineitem", "l_quantity"},
                              ColCase{&l, "lineitem", "l_extendedprice"},
                              ColCase{&l, "lineitem", "l_returnflag"},
                              ColCase{&l, "lineitem", "l_shipmode"},
                              ColCase{&o, "orders", "o_orderdate"},
                              ColCase{&o, "orders", "o_orderstatus"}}) {
      int col = cs.t->ColIndex(cs.column);
      double enc_ms = 0;
      double dec_ms = 0;
      EncodedColumn enc;
      for (int r = 0; r < reps; ++r) {
        auto start = std::chrono::steady_clock::now();
        enc = EncodeColumn(*cs.t, col);
        double ms = ElapsedMs(start);
        if (r == 0 || ms < enc_ms) enc_ms = ms;
      }
      std::vector<int64_t> iout;
      std::vector<double> dout;
      std::vector<uint32_t> cout_;
      for (int r = 0; r < reps; ++r) {
        auto start = std::chrono::steady_clock::now();
        if (enc.type == ValueType::kInt) {
          DecodeColumn(enc, &iout);
        } else if (enc.type == ValueType::kDouble) {
          DecodeColumn(enc, &dout);
        } else {
          DecodeColumn(enc, &cout_);
        }
        double ms = ElapsedMs(start);
        if (r == 0 || ms < dec_ms) dec_ms = ms;
      }
      double ratio = static_cast<double>(enc.PlainBytes()) /
                     static_cast<double>(enc.EncodedBytes());
      double enc_gbps = enc.PlainBytes() / 1e9 / (enc_ms / 1000.0);
      double dec_gbps = enc.PlainBytes() / 1e9 / (dec_ms / 1000.0);
      std::string label =
          StrFormat("%s.%s", cs.table, cs.column);
      printf("%-26s %7.2fx %12.2f %12.2f\n", label.c_str(), ratio,
             enc_gbps, dec_gbps);
      cells.push_back(StrFormat(
          "{\"kernel\": \"compress_column\", \"layout\": \"auto\", "
          "\"column\": \"%s\", \"sf\": %g, \"rows\": %zu, "
          "\"compressed_ratio\": %.3f, \"encode_gbps\": %.3f, "
          "\"decode_gbps\": %.3f}",
          label.c_str(), sf, enc.rows, ratio, enc_gbps, dec_gbps));
    }
  }

  // -- spill sweep: out-of-core pipeline at shrinking memory budgets -------
  //
  // One join + grouped-aggregate + sort pipeline runs at budgets of
  // 100% / 50% / 10% of the database's columnar working set; the
  // unlimited run is the fingerprint oracle. spill_bytes and
  // segcache_evictions describe how the budget was met (informational
  // in bench_diff.py); wall_ms carries the gate.
  {
    using elephant::exec::GetSpillCounters;
    using elephant::exec::ResetSpillCounters;
    using elephant::exec::SegmentCache;
    using elephant::exec::SetExecMemoryBudget;
    using elephant::exec::SortKey;
    using elephant::exec::SpillCounters;
    using elephant::exec::TableByteSize;
    size_t working_set = 0;
    for (int t = 0; t < elephant::tpch::kNumTables; ++t) {
      working_set += TableByteSize(
          db.table(static_cast<elephant::tpch::TableId>(t)));
    }
    std::vector<SortKey> sort_keys = {{c_price, false}, {c_okey, true}};
    auto pipeline = [&]() {
      Table joined = HashJoinOn(l, o, {"l_orderkey"}, {"o_orderkey"});
      Table agged = HashAggregateOn(
          l, {"l_returnflag", "l_linestatus"},
          {ColAgg(AggKind::kSum, l, "l_extendedprice", "sum_price",
                  ValueType::kDouble),
           CountAgg("n")});
      Table sorted = elephant::exec::SortBy(l, sort_keys);
      return TableFingerprint(joined) ^ TableFingerprint(agged) ^
             TableFingerprint(sorted);
    };
    size_t ambient_budget = elephant::exec::ExecMemoryBudget();
    SetExecMemoryBudget(0);
    uint64_t oracle = pipeline();
    printf("\n%-12s %12s %12s %14s %12s\n", "budget", "wall_ms",
           "spills", "spill_bytes", "evictions");
    for (int pct : {100, 50, 10}) {
      SetExecMemoryBudget(working_set * static_cast<size_t>(pct) / 100);
      double wall = 0;
      ResetSpillCounters();
      SegmentCache::Stats cache_before = SegmentCache::Global().GetStats();
      for (int r = 0; r < reps; ++r) {
        auto start = std::chrono::steady_clock::now();
        uint64_t fp = pipeline();
        double ms = ElapsedMs(start);
        if (r == 0 || ms < wall) wall = ms;
        ELEPHANT_CHECK(fp == oracle)
            << "spill sweep diverged from the in-memory oracle at "
            << pct << "% budget";
      }
      SpillCounters sc = GetSpillCounters();
      SegmentCache::Stats cache_after = SegmentCache::Global().GetStats();
      uint64_t ureps = static_cast<uint64_t>(reps);
      uint64_t spills =
          (sc.join_spills + sc.agg_spills + sc.sort_spills) / ureps;
      uint64_t spill_bytes = (cache_after.spill_bytes_written -
                              cache_before.spill_bytes_written) /
                             ureps;
      uint64_t evictions =
          (cache_after.evictions - cache_before.evictions) / ureps;
      printf("%11d%% %12.1f %12llu %14llu %12llu\n", pct, wall,
             static_cast<unsigned long long>(spills),
             static_cast<unsigned long long>(spill_bytes),
             static_cast<unsigned long long>(evictions));
      cells.push_back(StrFormat(
          "{\"kernel\": \"spill_sweep\", \"layout\": \"columnar\", "
          "\"budget_pct\": %d, \"sf\": %g, \"rows\": %zu, "
          "\"wall_ms\": %.3f, \"spills\": %llu, \"spill_bytes\": %llu, "
          "\"segcache_evictions\": %llu, \"peak_rss_bytes\": %lld}",
          pct, sf, n, wall, static_cast<unsigned long long>(spills),
          static_cast<unsigned long long>(spill_bytes),
          static_cast<unsigned long long>(evictions),
          elephant::bench::PeakRssBytes()));
    }
    SetExecMemoryBudget(ambient_budget);
  }

  elephant::bench::WriteBenchJson(out_path, "exec_kernels", threads,
                                  ElapsedMs(harness_start), cells);
  return 0;
}
