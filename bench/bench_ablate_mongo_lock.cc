// Ablation: MongoDB 1.8's global lock semantics (held across page
// faults) versus the yield-on-fault behaviour of v2.0 that the paper's
// footnote mentions ("potentially will allow for more concurrency, but
// our testing found it unreliable"). Run on workload A, where the paper
// measures the global lock write-held 25-45% of the time.

#include <cstdio>
#include <memory>
#include "common/check.h"

#include "ycsb/driver.h"

using namespace elephant;
using namespace elephant::ycsb;

namespace {

void RunVariant(bool yield_on_fault, int64_t target) {
  DriverOptions opt;
  opt.warmup = 2 * kSecond;
  opt.measure = 4 * kSecond;
  opt.target_throughput = target;
  OltpTestbed testbed;
  MongoAsSystem::Options m;
  int64_t mem = static_cast<int64_t>(opt.record_count * opt.record_bytes /
                                     OltpTestbed::kServerNodes /
                                     opt.data_to_memory_ratio);
  m.mongod.memory_bytes = mem / 16;
  m.node_cache_bytes =
      static_cast<int64_t>(mem * opt.mongo_cache_fraction_as);
  m.mongod.yield_on_fault = yield_on_fault;
  MongoAsSystem system(&testbed, m);
  YcsbDriver driver(&testbed, &system, WorkloadSpec::A(), opt);
  ELEPHANT_CHECK_OK(driver.Prepare());
  RunResult r = driver.Run();
  printf("  %-22s target=%6lld achieved=%8.0f read=%6.2f ms "
         "update=%6.2f ms write-lock=%4.1f%%\n",
         yield_on_fault ? "v2.0 yield-on-fault" : "v1.8 lock-over-fault",
         static_cast<long long>(target), r.achieved_ops_per_sec,
         r.MeanLatencyMs(OpType::kRead), r.MeanLatencyMs(OpType::kUpdate),
         100.0 * system.MeanWriteLockFraction());
}

}  // namespace

int main() {
  printf("Mongo-AS global-lock ablation on workload A (50%% updates)\n\n");
  for (int64_t target : {10000, 20000, 40000}) {
    RunVariant(false, target);
    RunVariant(true, target);
    printf("\n");
  }
  printf("Holding the global lock across 8 ms page faults is what turns\n"
         "update traffic into whole-process stalls; yielding on faults\n"
         "recovers most of the lost concurrency.\n");
  return 0;
}
