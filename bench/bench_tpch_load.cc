// Regenerates Table 2 of the paper: TPC-H load times for Hive (parallel
// HDFS copy + RCFile conversion) and PDW (dwloader through the landing
// node) at the four scale factors.

#include <cstdio>

#include "common/units.h"
#include "tpch/dss_benchmark.h"
#include "tpch/paper_reference.h"

using namespace elephant;

int main() {
  tpch::DssBenchmark bench;
  printf("Table 2: Load times in minutes (model, paper in parentheses)\n\n");
  printf("%-6s | %-16s | %-16s\n", "SF", "HIVE", "PDW");
  printf("-------+------------------+------------------\n");
  for (size_t i = 0; i < tpch::kPaperScaleFactors.size(); ++i) {
    double sf = tpch::kPaperScaleFactors[i];
    double hive_min = SimTimeToSeconds(bench.HiveLoadTime(sf)) / 60.0;
    double pdw_min = SimTimeToSeconds(bench.PdwLoadTime(sf)) / 60.0;
    printf("%-6.0f | %6.0f (%6.0f)  | %6.0f (%6.0f)\n", sf, hive_min,
           tpch::PaperReference::kHiveLoadMinutes[i], pdw_min,
           tpch::PaperReference::kPdwLoadMinutes[i]);
  }
  printf("\nShape check: Hive loads ~2x faster than PDW at every SF "
         "(dwloader is bottlenecked on the landing node's single NIC).\n");
  return 0;
}
