// Regenerates Table 5 of the paper: the time breakdown of Q22's four
// Hive sub-queries, including sub-query 4's repeated map-join failures
// (400 s Java-heap timeout, then a backup common join).

#include <cstdio>

#include "tpch/dss_benchmark.h"
#include "tpch/paper_reference.h"

using namespace elephant;

int main() {
  tpch::DssBenchmark bench;
  printf("Table 5: time breakdown for Q22 (model seconds, paper in "
         "parentheses)\n\n");
  printf("%-12s", "");
  for (double sf : tpch::kPaperScaleFactors) printf(" | SF=%-12.0f", sf);
  printf("\n-------------+----------------+----------------+-------------"
         "---+----------------\n");
  for (int sq = 1; sq <= 4; ++sq) {
    printf("Sub-query %d ", sq);
    for (size_t i = 0; i < tpch::kPaperScaleFactors.size(); ++i) {
      hive::HiveQueryResult r =
          bench.RunHive(22, tpch::kPaperScaleFactors[i]);
      SimTime t = r.TimeOfJobsWithPrefix("q22_sq" + std::to_string(sq));
      printf(" | %5.0f (%5.0f) ", SimTimeToSeconds(t),
             tpch::PaperReference::kQ22SubquerySeconds[sq - 1][i]);
    }
    printf("\n");
  }
  printf("\nSub-query 4 includes the map-join attempts that fail after "
         "~400 s with Java heap errors before the backup common join "
         "runs (§3.3.4.2).\n");
  return 0;
}
