// google-benchmark micro-benchmarks for the hot substrate paths: the
// DES event queue, the B+tree, the buffer pool, the YCSB generators,
// the latency histogram and the relational executor.

#include <benchmark/benchmark.h>

#include "common/check.h"
#include "common/distributions.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "exec/operators.h"
#include "sim/simulation.h"
#include "sqlkv/btree.h"
#include "sqlkv/buffer_pool.h"

using namespace elephant;

static void BM_EventQueue(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation sim;
    for (int i = 0; i < 1024; ++i) {
      sim.ScheduleCall((i * 7919) % 1000, [] {});
    }
    benchmark::DoNotOptimize(sim.Run());
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_EventQueue);

static void BM_BTreeInsertAscending(benchmark::State& state) {
  for (auto _ : state) {
    sqlkv::BTree tree(8192);
    for (uint64_t k = 0; k < 4096; ++k) {
      benchmark::DoNotOptimize(tree.Insert(k, {"", 1024}));
    }
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_BTreeInsertAscending);

static void BM_BTreeGet(benchmark::State& state) {
  sqlkv::BTree tree(8192);
  for (uint64_t k = 0; k < 100000; ++k)
    ELEPHANT_CHECK_OK(tree.Insert(k, {"", 1024}));
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Get(rng.Uniform(100000)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BTreeGet);

static void BM_BufferPoolTouch(benchmark::State& state) {
  sqlkv::BufferPool pool(64 * kMB, 8192);
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pool.Touch(rng.Uniform(20000), false));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BufferPoolTouch);

static void BM_ScrambledZipfian(benchmark::State& state) {
  ScrambledZipfianGenerator gen(1000000);
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.Next(&rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ScrambledZipfian);

static void BM_HistogramRecord(benchmark::State& state) {
  Histogram h;
  Rng rng(4);
  for (auto _ : state) {
    h.Record(static_cast<int64_t>(rng.Uniform(1000000)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecord);

static void BM_ExecHashJoin(benchmark::State& state) {
  exec::Table left({{"k", exec::ValueType::kInt}});
  exec::Table right({{"k", exec::ValueType::kInt}});
  for (int64_t i = 0; i < 10000; ++i) {
    left.AddRow({exec::Value{i}});
    right.AddRow({exec::Value{i % 1000}});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(exec::HashJoin(left, right, {0}, {0}));
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_ExecHashJoin);

BENCHMARK_MAIN();
