// Regenerates Figure 4 of the paper: workload A (50% reads / 50%
// updates), update and read latency vs throughput, plus the §3.4.3
// isolation-level side experiment (READ UNCOMMITTED at 40 Kops/s).
//
// Paper anchors: MongoDB's global write lock is held 25-45% of the time
// per mongod; SQL-CS's READ COMMITTED shared locks inflate read
// latencies; with READ UNCOMMITTED at 40 Kops/s the update latency was
// 69 ms and the read latency dropped to 15 ms.

#include "common/check.h"

#include "ycsb_bench_util.h"

using namespace elephant;
using namespace elephant::ycsb;

int main() {
  RunFigure("Figure 4", WorkloadSpec::A(),
            {1000, 2000, 5000, 10000, 20000, 40000},
            {OpType::kUpdate, OpType::kRead},
            "paper: mongo latencies blow up by 40K; write lock 25-45%");

  // Isolation side-experiment, run where SQL-CS is contended (the
  // model's SQL-CS is still comfortable at the paper's 40 Kops/s point,
  // so the lock-wait effect shows at its own saturation knee instead).
  DriverOptions opt = BenchOptions();
  RunResult rc = RunOnePoint(SystemKind::kSqlCs, WorkloadSpec::A(), 120000,
                             opt, /*read_uncommitted=*/false);
  RunResult ru = RunOnePoint(SystemKind::kSqlCs, WorkloadSpec::A(), 120000,
                             opt, /*read_uncommitted=*/true);
  printf("SQL-CS isolation at 120 Kops/s (paper ran this at 40 Kops/s: RU "
         "cuts read latency because reads stop blocking on writers):\n");
  printf("  READ COMMITTED:   read %.2f ms, update %.2f ms\n",
         rc.MeanLatencyMs(OpType::kRead), rc.MeanLatencyMs(OpType::kUpdate));
  printf("  READ UNCOMMITTED: read %.2f ms, update %.2f ms\n",
         ru.MeanLatencyMs(OpType::kRead), ru.MeanLatencyMs(OpType::kUpdate));

  // The paper's mongostat observation on the global lock.
  {
    DriverOptions o = BenchOptions();
    o.target_throughput = 20000;
    OltpTestbed tb;
    MongoAsSystem::Options m;
    int64_t mem = static_cast<int64_t>(o.record_count * o.record_bytes /
                                       OltpTestbed::kServerNodes /
                                       o.data_to_memory_ratio);
    m.mongod.memory_bytes = mem / 16;
    m.node_cache_bytes =
        static_cast<int64_t>(mem * o.mongo_cache_fraction_as);
    MongoAsSystem sys(&tb, m);
    YcsbDriver driver(&tb, &sys, WorkloadSpec::A(), o);
    ELEPHANT_CHECK_OK(driver.Prepare());
    // Only the lock-held fraction below is reported.
    (void)driver.Run();  // elephant-lint: allow(discarded-status)
    printf("Mongo-AS global write-lock occupancy at 20 Kops/s: %.1f%% "
           "(paper's mongostat: 25-45%%)\n",
           100.0 * sys.MeanWriteLockFraction());
  }
  return 0;
}
